"""Tests for the compressor- and error-bound-selection optimizers."""

import numpy as np
import pytest

from repro.core import select_compressor, select_error_bound


class TestSelectCompressor:
    def test_returns_full_grid(self, weight_like):
        best, grid = select_compressor(weight_like[:5000], candidates=("sz2", "szx"),
                                       error_bounds=(1e-2, 1e-3))
        assert len(grid) == 4
        assert best in grid

    def test_prediction_based_wins_on_ratio_weighting(self, weight_like):
        # with runtime essentially ignored, the best-ratio compressor must win
        best, _ = select_compressor(weight_like[:5000], candidates=("sz2", "szx", "zfp"),
                                    error_bounds=(1e-2,), runtime_weight=0.0)
        assert best.compressor in ("sz2", "sz3")

    def test_feasibility_constraint_uses_bandwidth(self, weight_like):
        # at an absurdly high bandwidth nothing is feasible (runtime > transfer
        # time), and the selector falls back to the full pool without crashing
        best, grid = select_compressor(weight_like[:2000], candidates=("sz2",),
                                       error_bounds=(1e-2,), bandwidth_mbps=1e9)
        assert not any(e.feasible for e in grid)
        assert best.compressor == "sz2"

    def test_empty_data_raises(self):
        with pytest.raises(ValueError):
            select_compressor(np.zeros(0))

    def test_evaluations_record_bound_behaviour(self, weight_like):
        _, grid = select_compressor(weight_like[:3000], candidates=("sz2",),
                                    error_bounds=(1e-1, 1e-3))
        by_bound = {e.error_bound: e for e in grid}
        assert by_bound[1e-1].ratio > by_bound[1e-3].ratio
        assert by_bound[1e-1].max_abs_error > by_bound[1e-3].max_abs_error

    def test_runtime_property(self, weight_like):
        _, grid = select_compressor(weight_like[:1000], candidates=("szx",), error_bounds=(1e-2,))
        assert grid[0].runtime == pytest.approx(
            grid[0].compress_seconds + grid[0].decompress_seconds)


class TestSelectErrorBound:
    def test_picks_largest_bound_within_tolerance(self):
        # accuracy flat up to 1e-2, collapses at 1e-1 (the paper's Figure 5 shape)
        accuracy = {1e-5: 0.80, 1e-4: 0.80, 1e-3: 0.795, 1e-2: 0.798, 1e-1: 0.35}
        cost = {b: 1.0 / b for b in accuracy}  # bigger bound = cheaper
        chosen = select_error_bound(lambda b: accuracy[b], lambda b: cost[b],
                                    error_bounds=accuracy.keys(), tolerance=0.005)
        assert chosen == pytest.approx(1e-2)

    def test_falls_back_to_most_accurate_when_nothing_qualifies(self):
        accuracy = {1e-3: 0.2, 1e-2: 0.5, 1e-1: 0.4}
        chosen = select_error_bound(lambda b: accuracy[b], lambda b: 1.0,
                                    error_bounds=accuracy.keys(),
                                    baseline_accuracy=0.9, tolerance=0.01)
        assert chosen == pytest.approx(1e-2)

    def test_explicit_baseline_used(self):
        accuracy = {1e-3: 0.70, 1e-2: 0.69}
        chosen = select_error_bound(lambda b: accuracy[b], lambda b: 1.0 / b,
                                    error_bounds=accuracy.keys(),
                                    baseline_accuracy=0.70, tolerance=0.02)
        assert chosen == pytest.approx(1e-2)

    def test_empty_bounds_raise(self):
        with pytest.raises(ValueError):
            select_error_bound(lambda b: 1.0, lambda b: 1.0, error_bounds=())

    def test_single_bound(self):
        assert select_error_bound(lambda b: 0.5, lambda b: 1.0, error_bounds=(1e-2,)) == 1e-2

"""Lossless codecs used for metadata and as the final stage of the EBLCs.

The paper evaluates blosc-lz, gzip, zlib, zstd, and xz (Table II).  No binary
codec libraries are available offline, so this module provides:

* :class:`BloscLZCodec` — a from-scratch blosc-style codec: a byte-shuffle
  filter (grouping the k-th byte of every element together, which makes IEEE
  floats far more compressible) followed by a fast DEFLATE pass.  This
  reproduces blosc-lz's "filter + very fast LZ" design and its Table II role
  (fastest, best ratio among the fast codecs).
* :class:`ShuffleRLECodec` — a fully from-scratch shuffle + run-length codec
  with no stdlib entropy stage, used in tests to exercise a hand-rolled
  bit-exact lossless path.
* stdlib wrappers: :class:`ZlibCodec`, :class:`GzipCodec`, :class:`Bzip2Codec`,
  :class:`LzmaCodec` (the ``xz`` stand-in) and :class:`ZstdLikeCodec` (a
  mid-level DEFLATE configuration standing in for zstd's speed/ratio point).

All codecs are *byte* codecs: they compress ``bytes`` to ``bytes``.  Array
convenience wrappers live on the base class.
"""

from __future__ import annotations

import bz2
import gzip
import lzma
import struct
import zlib

import numpy as np

__all__ = [
    "LosslessCodec",
    "StreamCompressor",
    "BufferedStreamCompressor",
    "StreamDecompressor",
    "BufferedStreamDecompressor",
    "BloscLZCodec",
    "ShuffleRLECodec",
    "ZlibCodec",
    "GzipCodec",
    "Bzip2Codec",
    "LzmaCodec",
    "ZstdLikeCodec",
    "available_lossless",
    "get_lossless",
]


class StreamCompressor:
    """Push-based incremental counterpart of :meth:`LosslessCodec.compress`.

    ``feed`` accepts plaintext bytes as they are produced and returns whatever
    compressed output became available; ``finish`` flushes the tail.  The
    concatenation of all returned bytes is byte-identical to ``compress`` over
    the whole plaintext, for every way the plaintext is split into pieces —
    that is the producer-side streaming contract (see FORMATS.md), and it is
    what lets a simulated transfer start before the encode completes.
    """

    def feed(self, data) -> bytes:
        raise NotImplementedError

    def finish(self) -> bytes:
        raise NotImplementedError


class BufferedStreamCompressor(StreamCompressor):
    """Fallback for codecs with no incremental backend: buffer, then compress.

    Used by the filter-based codecs (blosc-lz, shuffle-rle), whose shuffle
    transform needs the whole body before the first output byte is decidable,
    and by gzip, whose batch header is assembled differently across Python
    versions.  All compressed bytes surface at :meth:`finish`.
    """

    def __init__(self, codec: "LosslessCodec") -> None:
        self._codec = codec
        self._buf = bytearray()

    def feed(self, data) -> bytes:
        self._buf += memoryview(data)
        return b""

    def finish(self) -> bytes:
        return self._codec.compress(bytes(self._buf))


class _IncrementalStreamCompressor(StreamCompressor):
    """Wrapper over the stdlib incremental compressor objects.

    ``zlib.compressobj`` / ``bz2.BZ2Compressor`` / ``lzma.LZMACompressor``
    produce output that does not depend on how the input was chunked (no
    sync points are emitted between feeds), so the concatenated output equals
    the corresponding one-shot batch function byte for byte.
    """

    def __init__(self, obj) -> None:
        self._obj = obj

    def feed(self, data) -> bytes:
        return self._obj.compress(bytes(data))

    def finish(self) -> bytes:
        return self._obj.flush()


class StreamDecompressor:
    """Push-based incremental counterpart of :meth:`LosslessCodec.decompress`.

    ``feed`` accepts compressed bytes as they arrive and returns whatever
    plaintext became available; ``finish`` flushes the tail and verifies the
    stream actually ended.  The concatenation of all returned plaintext is
    byte-identical to ``decompress`` over the whole payload.  Corrupt or
    truncated input raises :class:`ValueError` (never a backend-specific
    exception), matching the repo-wide corruption contract.
    """

    def feed(self, data) -> bytes:
        raise NotImplementedError

    def finish(self) -> bytes:
        raise NotImplementedError


class BufferedStreamDecompressor(StreamDecompressor):
    """Fallback for codecs with no incremental backend: buffer, then decompress.

    Used by the filter-based codecs (blosc-lz, shuffle-rle) whose inverse
    transform needs the whole body, and by the identity codec.  All plaintext
    surfaces at :meth:`finish`.
    """

    def __init__(self, codec: "LosslessCodec") -> None:
        self._codec = codec
        self._buf = bytearray()

    def feed(self, data) -> bytes:
        self._buf += memoryview(data)
        return b""

    def finish(self) -> bytes:
        try:
            return self._codec.decompress(bytes(self._buf))
        except ValueError:
            raise
        except Exception as exc:
            raise ValueError(f"corrupt lossless stream "
                             f"({type(exc).__name__}: {exc})") from exc


class _ChainedStreamDecompressor(StreamDecompressor):
    """Incremental wrapper over the stdlib decompressor objects.

    ``factory`` builds one single-member decompressor (``zlib.decompressobj``,
    ``bz2.BZ2Decompressor``, ...).  ``chain`` reproduces the batch functions'
    concatenated-member behaviour (gzip/bz2/xz); ``ignore_trailing``
    reproduces their tolerance for garbage after a completed stream
    (``zlib.decompress`` ignores trailers unconditionally; bz2/xz ignore
    trailing bytes only once at least one member decoded; gzip raises).
    """

    def __init__(self, factory, *, chain: bool, ignore_trailing: bool) -> None:
        self._factory = factory
        self._chain = chain
        self._ignore_trailing = ignore_trailing
        self._obj = None
        self._started = False   # current member has consumed bytes
        self._members = 0       # completed members
        self._discard = False   # trailing bytes are being ignored

    def feed(self, data) -> bytes:
        data = bytes(data)
        if self._discard:
            return b""
        out: list[bytes] = []
        while data:
            if self._obj is None:
                self._obj = self._factory()
                self._started = False
            try:
                out.append(self._obj.decompress(data))
            except Exception as exc:
                if self._members and self._ignore_trailing and not self._started:
                    self._discard = True
                    break
                raise ValueError(f"corrupt lossless stream "
                                 f"({type(exc).__name__}: {exc})") from exc
            self._started = True
            if not self._obj.eof:
                break
            self._members += 1
            data = self._obj.unused_data
            self._obj = None
            if not self._chain:
                if data and not self._ignore_trailing:
                    raise ValueError("corrupt lossless stream: trailing data "
                                     "after the end-of-stream marker")
                self._discard = True
                break
        return b"".join(out)

    def finish(self) -> bytes:
        if not self._discard:
            if self._obj is not None and self._started and not self._obj.eof:
                raise ValueError("corrupt lossless stream: input ended before "
                                 "the end-of-stream marker")
            if self._members == 0 and not self._started:
                raise ValueError("corrupt lossless stream: no data")
        return b""


class LosslessCodec:
    """Base class: byte-in/byte-out lossless compression."""

    name: str = "identity"

    def compress(self, data: bytes) -> bytes:
        """Compress a byte string."""
        return bytes(data)

    def decompress(self, payload: bytes) -> bytes:
        """Invert :meth:`compress`."""
        return bytes(payload)

    def compressor(self) -> StreamCompressor:
        """Return a push-based incremental compressor for one stream.

        Codecs backed by a stdlib incremental object override this to release
        compressed bytes as plaintext is fed; the default buffers everything
        and compresses at ``finish`` (correct for any codec, overlaps
        nothing).  Either way the concatenated output is byte-identical to
        :meth:`compress` over the whole plaintext.
        """
        return BufferedStreamCompressor(self)

    def decompressor(self) -> StreamDecompressor:
        """Return a push-based incremental decompressor for one stream.

        Codecs backed by a stdlib incremental object override this to release
        plaintext as compressed bytes arrive; the default buffers everything
        and decompresses at ``finish`` (correct for any codec, overlaps
        nothing).
        """
        return BufferedStreamDecompressor(self)

    # -- array convenience ----------------------------------------------------
    def compress_array(self, array: np.ndarray) -> bytes:
        """Compress an ndarray, preserving dtype and shape."""
        array = np.ascontiguousarray(array)
        dtype_str = array.dtype.str.encode()
        header = struct.pack("<I", len(dtype_str)) + dtype_str
        header += struct.pack("<I", array.ndim)
        header += struct.pack(f"<{array.ndim}Q", *array.shape) if array.ndim else b""
        return header + self.compress(array.tobytes())

    def decompress_array(self, payload: bytes) -> np.ndarray:
        """Invert :meth:`compress_array`."""
        (dlen,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        dtype = np.dtype(payload[offset : offset + dlen].decode())
        offset += dlen
        (ndim,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        shape = struct.unpack_from(f"<{ndim}Q", payload, offset) if ndim else ()
        offset += 8 * ndim
        raw = self.decompress(payload[offset:])
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def _shuffle(data: bytes, itemsize: int) -> bytes:
    """Byte-shuffle filter: transpose the (n_items, itemsize) byte matrix."""
    if itemsize <= 1 or len(data) % itemsize != 0:
        return data
    arr = np.frombuffer(data, dtype=np.uint8).reshape(-1, itemsize)
    return arr.T.copy().tobytes()


def _unshuffle(data: bytes, itemsize: int) -> bytes:
    """Inverse of :func:`_shuffle`."""
    if itemsize <= 1 or len(data) % itemsize != 0:
        return data
    arr = np.frombuffer(data, dtype=np.uint8).reshape(itemsize, -1)
    return arr.T.copy().tobytes()


class BloscLZCodec(LosslessCodec):
    """Byte-shuffle + fast DEFLATE, standing in for blosc-lz.

    ``itemsize`` controls the shuffle stride (4 for float32 payloads).  The
    header records the itemsize and original length so decompression is
    self-contained.
    """

    name = "blosclz"

    def __init__(self, itemsize: int = 4, level: int = 1) -> None:
        self.itemsize = int(itemsize)
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        itemsize = self.itemsize if len(data) % max(self.itemsize, 1) == 0 else 1
        shuffled = _shuffle(data, itemsize)
        body = zlib.compress(shuffled, self.level)
        return struct.pack("<BQ", itemsize, len(data)) + body

    def decompress(self, payload: bytes) -> bytes:
        itemsize, length = struct.unpack_from("<BQ", payload, 0)
        raw = zlib.decompress(payload[9:])
        out = _unshuffle(raw, itemsize)
        if len(out) != length:
            raise ValueError("blosclz payload corrupt: length mismatch")
        return out


class ShuffleRLECodec(LosslessCodec):
    """From-scratch shuffle + byte run-length codec (no stdlib entropy stage).

    Encoding: byte-shuffle, then each maximal run of a repeated byte value is
    stored as ``(value, run_length)`` with run lengths capped at 255.  The
    format is only efficient on data with long byte runs (exactly what the
    shuffle produces for the high-order bytes of similar floats); it exists to
    provide a dependency-free reference codec and is exercised heavily by the
    property-based tests.
    """

    name = "shuffle-rle"

    def __init__(self, itemsize: int = 4) -> None:
        self.itemsize = int(itemsize)

    def compress(self, data: bytes) -> bytes:
        itemsize = self.itemsize if len(data) % max(self.itemsize, 1) == 0 else 1
        shuffled = np.frombuffer(_shuffle(data, itemsize), dtype=np.uint8)
        header = struct.pack("<BQ", itemsize, len(data))
        if shuffled.size == 0:
            return header
        # run-length encode: boundaries where the byte value changes
        change = np.flatnonzero(np.diff(shuffled)) + 1
        starts = np.concatenate([[0], change])
        ends = np.concatenate([change, [shuffled.size]])
        values = shuffled[starts]
        lengths = ends - starts
        # split runs longer than 255 into chunks
        out_vals: list[np.ndarray] = []
        out_lens: list[np.ndarray] = []
        n_chunks = (lengths + 254) // 255
        total_chunks = int(n_chunks.sum())
        chunk_vals = np.repeat(values, n_chunks)
        chunk_lens = np.empty(total_chunks, dtype=np.uint8)
        pos = 0
        for length, chunks in zip(lengths.tolist(), n_chunks.tolist()):
            remaining = length
            for _ in range(chunks):
                take = min(remaining, 255)
                chunk_lens[pos] = take
                remaining -= take
                pos += 1
        out_vals.append(chunk_vals.astype(np.uint8))
        out_lens.append(chunk_lens)
        vals = np.concatenate(out_vals)
        lens = np.concatenate(out_lens)
        body = np.stack([vals, lens], axis=1).tobytes()
        return header + body

    def decompress(self, payload: bytes) -> bytes:
        itemsize, length = struct.unpack_from("<BQ", payload, 0)
        body = np.frombuffer(payload, dtype=np.uint8, offset=9)
        if body.size == 0:
            return b""
        pairs = body.reshape(-1, 2)
        values = pairs[:, 0]
        lengths = pairs[:, 1].astype(np.int64)
        shuffled = np.repeat(values, lengths).tobytes()
        out = _unshuffle(shuffled, itemsize)
        if len(out) != length:
            raise ValueError("shuffle-rle payload corrupt: length mismatch")
        return out


class ZlibCodec(LosslessCodec):
    """Plain DEFLATE (zlib container)."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)

    def compressor(self) -> StreamCompressor:
        return _IncrementalStreamCompressor(zlib.compressobj(self.level))

    def decompressor(self) -> StreamDecompressor:
        # zlib.decompress ignores any bytes after the end-of-stream marker
        return _ChainedStreamDecompressor(zlib.decompressobj,
                                          chain=False, ignore_trailing=True)


class GzipCodec(LosslessCodec):
    """DEFLATE in a gzip container (matches the paper's Python ``gzip``)."""

    name = "gzip"

    def __init__(self, level: int = 9) -> None:
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return gzip.compress(data, compresslevel=self.level)

    def decompress(self, payload: bytes) -> bytes:
        return gzip.decompress(payload)

    def decompressor(self) -> StreamDecompressor:
        # wbits=31 decodes one gzip member (header + CRC trailer verified);
        # gzip.decompress accepts concatenated members but rejects trailers
        return _ChainedStreamDecompressor(lambda: zlib.decompressobj(31),
                                          chain=True, ignore_trailing=False)


class Bzip2Codec(LosslessCodec):
    """Burrows-Wheeler codec, included for completeness of the comparison."""

    name = "bzip2"

    def __init__(self, level: int = 9) -> None:
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        return bz2.decompress(payload)

    def compressor(self) -> StreamCompressor:
        return _IncrementalStreamCompressor(bz2.BZ2Compressor(self.level))

    def decompressor(self) -> StreamDecompressor:
        return _ChainedStreamDecompressor(bz2.BZ2Decompressor,
                                          chain=True, ignore_trailing=True)


class LzmaCodec(LosslessCodec):
    """LZMA (the ``xz`` stand-in: best ratio, slowest runtime)."""

    name = "xz"

    def __init__(self, preset: int = 6) -> None:
        self.preset = int(preset)

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decompress(self, payload: bytes) -> bytes:
        return lzma.decompress(payload)

    def compressor(self) -> StreamCompressor:
        return _IncrementalStreamCompressor(lzma.LZMACompressor(preset=self.preset))

    def decompressor(self) -> StreamDecompressor:
        return _ChainedStreamDecompressor(lzma.LZMADecompressor,
                                          chain=True, ignore_trailing=True)


class ZstdLikeCodec(LosslessCodec):
    """Stand-in for zstd: mid-level DEFLATE with a shuffle filter disabled.

    zstd sits between blosc-lz and gzip in both runtime and ratio in Table II;
    DEFLATE level 3 occupies the same position among the stand-ins.
    """

    name = "zstd"

    def __init__(self, level: int = 3) -> None:
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)

    def compressor(self) -> StreamCompressor:
        return _IncrementalStreamCompressor(zlib.compressobj(self.level))

    def decompressor(self) -> StreamDecompressor:
        return _ChainedStreamDecompressor(zlib.decompressobj,
                                          chain=False, ignore_trailing=True)


_LOSSLESS: dict[str, type[LosslessCodec]] = {
    "identity": LosslessCodec,
    "blosclz": BloscLZCodec,
    "shuffle-rle": ShuffleRLECodec,
    "zlib": ZlibCodec,
    "gzip": GzipCodec,
    "bzip2": Bzip2Codec,
    "xz": LzmaCodec,
    "zstd": ZstdLikeCodec,
}


def available_lossless() -> list[str]:
    """Names of the registered lossless codecs."""
    return sorted(_LOSSLESS)


def get_lossless(name: str, **kwargs: object) -> LosslessCodec:
    """Instantiate a lossless codec by registry name."""
    try:
        cls = _LOSSLESS[name]
    except KeyError:
        # ValueError, matching every other bad-input path in the codebase
        raise ValueError(f"unknown lossless codec {name!r}; available: {available_lossless()}") from None
    return cls(**kwargs)  # type: ignore[arg-type]

"""Round-by-round federated simulation with a concurrent, scenario-rich engine.

:class:`FederatedSimulation` orchestrates the full paper workflow:

* partition a dataset over ``n_clients`` (IID by default, as in Section VI-B),
* each round, broadcast the global state, run local SGD on the participating
  clients, encode each update through the configured :class:`UpdateCodec`,
  move it over the :class:`NetworkModel`, decode at the server, FedAvg, and
  validate,
* record a :class:`RoundRecord` with accuracy, byte counts, and the
  train/compress/communicate time breakdown that Figures 4-7 report.

Round-engine knobs (all default to the original strictly-sequential,
full-participation semantics, which the test suite pins bit-for-bit):

* ``max_workers`` / ``backend`` — client training and the per-client
  encode → transfer → decode pipeline fan out over an
  :class:`~repro.utils.parallel.ExecutionBackend` pool of this size
  (``serial`` / ``thread`` / ``process``); with ``simulate_delay=True``
  networks the injected sleeps overlap across clients, so a parallel round's
  wall clock approaches the slowest client instead of the sum.
  ``max_workers=1`` (or ``backend="serial"``) is the sequential reference
  path, and every backend/worker combination reproduces it bit-for-bit.  Both
  per-client stages are module-level task functions over explicit picklable
  argument structs, which is what lets the ``process`` backend ship them to a
  GIL-free worker farm (clients mutated in a process worker are re-absorbed
  from the returned updates, so the replicas stay consistent).
* ``participation`` — clients sampled per round: a float in ``(0, 1]`` is a
  fraction of the fleet, an int ``> 1`` an absolute count.  Sampling is seeded
  and independent of the worker count.
* ``dropout_prob`` — probability that a sampled client is unavailable this
  round (its update never arrives and contributes no bytes).
* ``straggler_prob`` / ``straggler_slowdown`` — probability that a surviving
  client straggles, multiplying its reported training and transfer time.
* ``networks`` — optional per-client heterogeneous links; defaults to the
  shared ``network`` for every client.  Each client's codec is resolved
  against its own link through :meth:`~repro.fl.codec.UpdateCodec.for_network`
  — under the bandwidth-aware ``profiled`` plan policy a 5 Mbps straggler
  ships aggressively-compressed updates while a 500 Mbps client ships
  near-lossless ones, and ``RoundRecord.client_plans`` records each client's
  per-tensor plan so the divergence is observable.
* ``uplink`` — ``"serial"`` (shared uplink, round communication time is the
  sum over clients; the original semantics) or ``"parallel"`` (independent
  links, the round waits for the slowest client: the max).
* ``compute_factors`` — optional per-client device-speed factors forwarded to
  :class:`~repro.fl.client.FLClient` (reported train time scaling only).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.network import UPLINK_MODES, NetworkModel, round_communication_time
from repro.core.pipeline import FedSZReport
from repro.core.plan import CompressionPlan
from repro.data.datasets import Dataset
from repro.data.partition import partition_dataset
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.codec import FedSZUpdateCodec, RawUpdateCodec, UpdateCodec
from repro.fl.server import FedAvgServer
from repro.nn.module import Module
from repro.utils.parallel import ExecutionBackend, get_backend

__all__ = ["RoundRecord", "SimulationResult", "FederatedSimulation",
           "train_clients_parallel"]


def _train_client_task(task: "tuple[FLClient, dict, int]") -> ClientUpdate:
    """Broadcast-and-train one client: ``(client, global_state, epochs)``.

    Module-level and picklable for the process backend.  The broadcast happens
    inside the task (clients are independent, so receive-then-train per client
    is bit-identical to a global broadcast followed by training), and the
    updated state travels back in the returned :class:`ClientUpdate` — the
    caller re-absorbs it into its own replica when the backend does not share
    memory.
    """
    client, global_state, epochs = task
    client.receive_global(global_state)
    return client.train_local(epochs=epochs)


def train_clients_parallel(clients: Sequence[FLClient], global_state: dict,
                           epochs: int = 1, max_workers: int | None = None,
                           backend: "str | ExecutionBackend" = "thread") -> list[ClientUpdate]:
    """Broadcast ``global_state`` to every client and train them concurrently.

    Returns the per-client :class:`ClientUpdate` objects in client order, ready
    for FedAvg aggregation.  Each client owns a private model replica (and
    ``receive_global`` copies the broadcast arrays), so no state is shared
    between training workers; on a process backend the trained state is loaded
    back into the caller's replicas so every backend leaves the clients in the
    same state.
    """
    exec_backend = get_backend(backend)
    updates = exec_backend.map(_train_client_task,
                               [(client, global_state, epochs) for client in clients],
                               workers=max_workers)
    if not exec_backend.shared_memory:
        for client, update in zip(clients, updates):
            client.receive_global(update.state)
    return updates


@dataclass
class _ShipTask:
    """Explicit picklable argument struct for :func:`_ship_update_task`."""

    client_id: int
    state: dict[str, np.ndarray]
    codec: UpdateCodec
    network: NetworkModel
    #: reported transfer time is multiplied by this (1.0 = not a straggler)
    straggler_slowdown: float


@dataclass
class _ShipResult:
    """What one client's encode → transfer → decode stage hands back."""

    client_id: int
    payload_bytes: int
    raw_bytes: int
    encode_seconds: float
    transfer_seconds: float
    decode_seconds: float
    state: dict[str, np.ndarray]
    report: "FedSZReport | None"


def _ship_update_task(task: _ShipTask) -> _ShipResult:
    """Encode, transfer, and decode one client's update.

    Runs per client on the execution backend so that simulated network delays
    (``simulate_delay=True``, the paper's MPI-delay-injection methodology)
    overlap across clients instead of sleeping serially.  Module-level with an
    explicit argument struct so the process backend can ship it to a GIL-free
    worker; per-client compression statistics come from the codec's per-call
    reporting API, so they stay accurate at any worker count on any backend.
    """
    start = time.perf_counter()
    payload, report = task.codec.encode_with_report(task.state)
    encode_seconds = time.perf_counter() - start
    raw_bytes = len(RawUpdateCodec().encode(task.state))

    transfer_seconds = task.network.transfer_time(len(payload)) * task.straggler_slowdown
    if task.network.simulate_delay:
        time.sleep(transfer_seconds)

    start = time.perf_counter()
    state = task.codec.decode(payload)
    decode_seconds = time.perf_counter() - start
    return _ShipResult(client_id=task.client_id, payload_bytes=len(payload),
                       raw_bytes=raw_bytes, encode_seconds=encode_seconds,
                       transfer_seconds=transfer_seconds,
                       decode_seconds=decode_seconds, state=state, report=report)


@dataclass
class RoundRecord:
    """Measurements of a single communication round."""

    round_index: int
    accuracy: float
    mean_train_seconds: float
    mean_encode_seconds: float
    mean_decode_seconds: float
    validation_seconds: float
    uncompressed_bytes: int
    transmitted_bytes: int
    communication_seconds: float
    client_losses: list[float] = field(default_factory=list)
    #: ids of the clients whose updates were aggregated this round
    participants: list[int] = field(default_factory=list)
    #: ids of sampled clients that dropped out before reporting
    dropped_clients: list[int] = field(default_factory=list)
    #: ids of participants whose train/transfer time was straggler-inflated
    straggler_clients: list[int] = field(default_factory=list)
    #: per-client compression statistics, keyed by client id (empty when the
    #: codec collects none, e.g. the uncompressed baseline)
    client_reports: dict[int, FedSZReport] = field(default_factory=dict)
    #: per-client compression plans, keyed by client id (empty for codecs that
    #: report none); under a bandwidth-aware policy on a heterogeneous fleet
    #: these differ client to client — the per-link selection made visible
    client_plans: dict[int, CompressionPlan] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        """Aggregate upload compression ratio across all clients this round."""
        return self.uncompressed_bytes / self.transmitted_bytes if self.transmitted_bytes else 1.0


@dataclass
class SimulationResult:
    """All rounds of one federated run plus the configuration context."""

    codec_name: str
    rounds: list[RoundRecord] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Validation accuracy after the last round (0.0 when no rounds ran)."""
        return self.rounds[-1].accuracy if self.rounds else 0.0

    @property
    def accuracies(self) -> list[float]:
        """Per-round validation accuracies (the Figure 4 series)."""
        return [r.accuracy for r in self.rounds]

    @property
    def total_transmitted_bytes(self) -> int:
        """Total client→server upload volume over the run."""
        return sum(r.transmitted_bytes for r in self.rounds)

    @property
    def total_communication_seconds(self) -> float:
        """Total modeled client→server transfer time over the run."""
        return sum(r.communication_seconds for r in self.rounds)

    @property
    def mean_compression_ratio(self) -> float:
        """Mean of the per-round aggregate compression ratios."""
        if not self.rounds:
            return 1.0
        return float(np.mean([r.compression_ratio for r in self.rounds]))


class FederatedSimulation:
    """FedAvg over simulated clients with a configurable update codec."""

    def __init__(self, model_factory, train_dataset: Dataset, test_dataset: Dataset,
                 n_clients: int = 4, codec: UpdateCodec | None = None,
                 network: NetworkModel | None = None, partition_scheme: str = "iid",
                 dirichlet_alpha: float = 0.5, local_epochs: int = 1,
                 batch_size: int = 32, lr: float = 0.05, momentum: float = 0.9,
                 seed: int | None = 0, max_workers: int | None = 1,
                 participation: float | int = 1.0, dropout_prob: float = 0.0,
                 straggler_prob: float = 0.0, straggler_slowdown: float = 4.0,
                 networks: Sequence[NetworkModel] | None = None,
                 uplink: str = "serial",
                 compute_factors: Sequence[float] | None = None,
                 backend: "str | ExecutionBackend" = "thread") -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.backend = get_backend(backend)  # unknown names raise ValueError
        if uplink not in UPLINK_MODES:
            raise ValueError(f"uplink must be one of {UPLINK_MODES}, got {uplink!r}")
        if isinstance(participation, bool) or not isinstance(participation, (int, float)):
            raise ValueError("participation must be a fraction in (0, 1] or an int count")
        if isinstance(participation, int):
            if not 1 <= participation <= n_clients:
                raise ValueError(f"participation count must be in [1, {n_clients}], got {participation}")
        elif not 0.0 < participation <= 1.0:
            raise ValueError(f"participation fraction must be in (0, 1], got {participation}")
        if not 0.0 <= dropout_prob <= 1.0:
            raise ValueError("dropout_prob must be in [0, 1]")
        if not 0.0 <= straggler_prob <= 1.0:
            raise ValueError("straggler_prob must be in [0, 1]")
        if straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1.0")
        if networks is not None and len(networks) != n_clients:
            raise ValueError(f"networks must have one entry per client ({n_clients}), got {len(networks)}")
        if compute_factors is not None and len(compute_factors) != n_clients:
            raise ValueError(f"compute_factors must have one entry per client ({n_clients})")

        self.model_factory = model_factory
        self.codec = codec or RawUpdateCodec()
        self.network = network or NetworkModel(bandwidth_mbps=10.0)
        self.local_epochs = int(local_epochs)
        self.test_dataset = test_dataset
        self.max_workers = max_workers
        self.participation = participation
        self.dropout_prob = float(dropout_prob)
        self.straggler_prob = float(straggler_prob)
        self.straggler_slowdown = float(straggler_slowdown)
        self.uplink = uplink
        self.client_networks = list(networks) if networks is not None \
            else [self.network] * n_clients
        # one codec per client, resolved against that client's uplink: a no-op
        # for link-agnostic codecs (for_network returns the shared instance),
        # per-link plan policies for the bandwidth-aware ones
        self.client_codecs = [self.codec.for_network(net)
                              for net in self.client_networks]
        # seed=None means "give me a different run every time" — draw a fresh
        # scenario seed from entropy instead of silently pinning the
        # participant/dropout/straggler pattern to seed 0
        self._scenario_seed = seed if seed is not None \
            else int(np.random.SeedSequence().entropy) % (2 ** 63)

        shards = partition_dataset(train_dataset, n_clients, scheme=partition_scheme,
                                   alpha=dirichlet_alpha, seed=seed)
        factors = list(compute_factors) if compute_factors is not None else [1.0] * n_clients
        self.clients = [
            FLClient(client_id=i, model=model_factory(), dataset=shard,
                     batch_size=batch_size, lr=lr, momentum=momentum, seed=(seed or 0) + i,
                     compute_factor=factors[i])
            for i, shard in enumerate(shards)
        ]
        global_model: Module = model_factory()
        self.server = FedAvgServer(global_model, test_dataset)

    # ------------------------------------------------------------------
    @property
    def _full_participation(self) -> bool:
        if self.dropout_prob or self.straggler_prob:
            return False
        # branch on type first: an int participation of 1 is a *count* of one
        # client, not the 1.0 full-participation fraction
        if isinstance(self.participation, int):
            return self.participation == len(self.clients)
        return self.participation == 1.0

    def _participation_count(self) -> int:
        n = len(self.clients)
        if isinstance(self.participation, int):
            return self.participation
        return max(1, round(self.participation * n))

    def plan_round(self, round_index: int) -> tuple[list[int], list[int], list[int]]:
        """Seeded scenario draw for one round: (participants, dropped, stragglers).

        The draw depends only on the simulation seed, the scenario knobs, and
        ``round_index`` — never on the worker count or wall-clock — so a run is
        reproducible at any parallelism level.
        """
        n = len(self.clients)
        if self._full_participation:
            return list(range(n)), [], []
        rng = np.random.default_rng([self._scenario_seed, 0x5CE9A210, round_index])
        sampled = sorted(int(i) for i in rng.choice(n, size=self._participation_count(),
                                                    replace=False))
        dropped = [i for i in sampled
                   if self.dropout_prob and rng.random() < self.dropout_prob]
        survivors = [i for i in sampled if i not in dropped]
        stragglers = [i for i in survivors
                      if self.straggler_prob and rng.random() < self.straggler_prob]
        return survivors, dropped, stragglers

    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one communication round and return its measurements."""
        global_state = self.server.global_state()
        participants, dropped, stragglers = self.plan_round(round_index)
        straggler_set = set(stragglers)
        active = [self.clients[i] for i in participants]

        updates: list[ClientUpdate] = train_clients_parallel(
            active, global_state, epochs=self.local_epochs,
            max_workers=self.max_workers, backend=self.backend) if active else []

        tasks = [
            _ShipTask(client_id=cid, state=update.state,
                      codec=self.client_codecs[cid],
                      network=self.client_networks[cid],
                      straggler_slowdown=self.straggler_slowdown
                      if cid in straggler_set else 1.0)
            for cid, update in zip(participants, updates)
        ]
        shipped: list[_ShipResult] = self.backend.map(
            _ship_update_task, tasks, workers=self.max_workers)
        transfer_times = [result.transfer_seconds for result in shipped]
        client_reports = {result.client_id: result.report for result in shipped
                          if result.report is not None}
        client_plans = {cid: report.plan for cid, report in client_reports.items()
                        if report.plan is not None}

        train_times = [
            update.train_seconds * (self.straggler_slowdown if cid in straggler_set else 1.0)
            for cid, update in zip(participants, updates)
        ]
        losses = [update.train_loss for update in updates]
        decoded_states = [result.state for result in shipped]
        weights = [update.num_samples for update in updates]

        self.server.aggregate(decoded_states, weights, allow_empty=True)
        start = time.perf_counter()
        accuracy = self.server.evaluate()
        validation_seconds = time.perf_counter() - start

        def _mean(values: list[float]) -> float:
            return float(np.mean(values)) if values else 0.0

        return RoundRecord(
            round_index=round_index,
            accuracy=accuracy,
            mean_train_seconds=_mean(train_times),
            mean_encode_seconds=_mean([result.encode_seconds for result in shipped]),
            mean_decode_seconds=_mean([result.decode_seconds for result in shipped]),
            validation_seconds=validation_seconds,
            uncompressed_bytes=sum(result.raw_bytes for result in shipped),
            transmitted_bytes=sum(result.payload_bytes for result in shipped),
            communication_seconds=round_communication_time(transfer_times, self.uplink),
            client_losses=losses,
            participants=list(participants),
            dropped_clients=list(dropped),
            straggler_clients=list(stragglers),
            client_reports=client_reports,
            client_plans=client_plans,
        )

    def run(self, n_rounds: int = 10) -> SimulationResult:
        """Run ``n_rounds`` communication rounds and collect the records."""
        result = SimulationResult(codec_name=self.codec.name)
        for round_index in range(n_rounds):
            result.rounds.append(self.run_round(round_index))
        return result


def make_fedsz_simulation(model_factory, train_dataset: Dataset, test_dataset: Dataset,
                          error_bound: float = 1e-2, **kwargs) -> FederatedSimulation:
    """Convenience constructor wiring a FedSZ codec at the given error bound."""
    from repro.core.config import FedSZConfig

    codec = FedSZUpdateCodec(FedSZConfig(error_bound=error_bound))
    return FederatedSimulation(model_factory, train_dataset, test_dataset, codec=codec, **kwargs)

"""Tests for the Module tree, state_dict semantics, and the optimizer/loss."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, Linear, ReLU, SGD, Sequential
from repro.nn.layers import BatchNorm2d, Conv2d
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.act = ReLU()
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))

    def backward(self, grad):
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))


class TestStateDict:
    def test_names_are_dotted_paths(self):
        net = TinyNet()
        names = set(net.state_dict())
        assert {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"} == names

    def test_weight_token_present_for_partitioning(self):
        # Algorithm 1 partitions on the substring "weight" in the key
        net = TinyNet()
        assert any("weight" in name for name in net.state_dict())

    def test_state_dict_returns_copies(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_load_state_dict_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.fc1.weight.data += 1.0
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_array_equal(net1.fc1.weight.data, net2.fc1.weight.data)

    def test_load_state_dict_strict_missing_key(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc2.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_strict_unexpected_key(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(3, dtype=np.float32)
        with pytest.raises(KeyError):
            net.load_state_dict(state)
        net.load_state_dict(state, strict=False)  # tolerated when not strict

    def test_load_state_dict_shape_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_buffers_included_for_batchnorm(self):
        net = Sequential(Conv2d(1, 2, 3, padding=1), BatchNorm2d(2))
        state = net.state_dict()
        assert "1.running_mean" in state
        assert "1.running_var" in state

    def test_load_resets_gradients(self):
        net = TinyNet()
        net.fc1.weight.grad += 5.0
        net.load_state_dict(net.state_dict())
        assert np.allclose(net.fc1.weight.grad, 0.0)


class TestModuleTraversal:
    def test_named_parameters_count(self):
        net = TinyNet()
        assert len(list(net.named_parameters())) == 4

    def test_parameters_list(self):
        net = TinyNet()
        assert all(isinstance(p, Parameter) for p in net.parameters())

    def test_named_modules_includes_self_and_children(self):
        net = TinyNet()
        names = [name for name, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_train_eval_propagates(self):
        net = Sequential(Conv2d(1, 2, 3), BatchNorm2d(2))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears_all(self):
        net = TinyNet()
        for p in net.parameters():
            p.grad += 1.0
        net.zero_grad()
        assert all(np.allclose(p.grad, 0.0) for p in net.parameters())

    def test_sequential_indexing(self):
        net = Sequential(Linear(2, 2), ReLU())
        assert len(net) == 2
        assert isinstance(net[1], ReLU)

    def test_sequential_append(self):
        net = Sequential(Linear(2, 2))
        net.append(ReLU())
        assert len(net) == 2
        assert "1" in dict(net.named_modules())


class TestLossAndOptimizer:
    def test_cross_entropy_uniform_logits(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        loss = loss_fn(logits, np.array([0, 1, 2, 3]))
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_cross_entropy_perfect_prediction_low_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        assert loss_fn(logits, np.array([1, 2])) < 1e-6

    def test_cross_entropy_gradient_sums_to_zero_per_row(self):
        loss_fn = CrossEntropyLoss()
        logits = np.random.default_rng(0).standard_normal((5, 7))
        loss_fn(logits, np.arange(5))
        grad = loss_fn.backward()
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-10)

    def test_cross_entropy_gradient_numerical(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((3, 4))
        targets = np.array([1, 0, 3])
        loss_fn = CrossEntropyLoss()
        loss_fn(logits, targets)
        analytic = loss_fn.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(3):
            for j in range(4):
                plus = logits.copy(); plus[i, j] += eps
                minus = logits.copy(); minus[i, j] -= eps
                numeric[i, j] = (CrossEntropyLoss()(plus, targets) - CrossEntropyLoss()(minus, targets)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((3, 2)), np.zeros(4))

    def test_sgd_moves_against_gradient(self):
        param = Parameter(np.array([1.0, 2.0], dtype=np.float32))
        param.grad[:] = [0.5, -0.5]
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [0.95, 2.05])

    def test_sgd_momentum_accumulates(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        opt = SGD([param], lr=1.0, momentum=0.9)
        param.grad[:] = 1.0
        opt.step()
        first = float(param.data[0])
        param.grad[:] = 1.0
        opt.step()
        second_step = float(param.data[0]) - first
        assert second_step < -1.0  # momentum makes the second step larger

    def test_sgd_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([10.0], dtype=np.float32))
        param.grad[:] = 0.0
        SGD([param], lr=0.1, weight_decay=0.5).step()
        assert float(param.data[0]) < 10.0

    def test_sgd_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1, momentum=1.0)

    def test_sgd_zero_grad(self):
        param = Parameter(np.ones(3, dtype=np.float32))
        param.grad += 2.0
        opt = SGD([param], lr=0.1)
        opt.zero_grad()
        assert np.allclose(param.grad, 0.0)

    def test_training_reduces_loss_on_toy_problem(self):
        rng = np.random.default_rng(0)
        net = TinyNet()
        x = rng.standard_normal((64, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        loss_fn = CrossEntropyLoss()
        opt = SGD(net.parameters(), lr=0.5, momentum=0.9)
        first_loss = None
        for _ in range(40):
            loss = loss_fn(net(x), y)
            if first_loss is None:
                first_loss = loss
            net.zero_grad()
            net.backward(loss_fn.backward())
            opt.step()
        assert loss < first_loss * 0.5

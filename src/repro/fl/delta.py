"""Cross-round residual shipping: the error-feedback delta codec.

After PRs 7–9 hid the encode/decode time inside the transfer window, the
remaining Eqn.-1 lever is the payload size ``S'`` itself.  Round-over-round
client states differ by tiny, low-entropy residuals, so this module ships
``state − reference`` (the last server-acknowledged global state) instead of
the raw state, wrapped in a small versioned frame:

Frame format (v5, FORMATS.md)::

    4s   magic b"FDL5"
    u8   mode (0 = full state, 1 = delta against the armed reference)
    u64  reference generation (the round index the reference was produced by)

followed by the *inner* codec's ordinary bitstream — of the raw state in
full mode, of the residual dict in delta mode.  The generation tag makes a
stale reference fail loudly at decode time instead of silently reconstructing
against the wrong state; the coordinator degrades such clients to full-state
ships (mode 0), which need no reference at all.

Error feedback
--------------

Lossy-compressing residuals naively lets quantization error accumulate across
rounds.  The classic fix is a per-client accumulator that carries each
round's error into the next residual::

    residual_t = (state_t - reference_t) + acc_{t-1}          (shipped)
    recon_t    = reference_t + decode(Q(residual_t))          (server view)
    acc_t      = (state_t - recon_t) + acc_{t-1}              (held back)

The second and third lines are algebraically the same quantity
(``residual_t − decode(Q(residual_t))``), but computing ``acc_t`` from the
*reconstructed* state makes it exact float64 arithmetic over values both
sides agree on — one canonical kernel (:func:`advance_accumulator`), run
coordinator-side only, so every backend and worker count produces the same
accumulator bit for bit.  A full-state ship resets the accumulator to the
plain reconstruction error (pass ``acc=None``).

All three kernels treat non-float tensors exactly: their residuals are
native-dtype differences (integer wraparound is its own inverse), they ride
the inner codec's lossless partition, and they carry no accumulator.

Bound semantics: a REL error bound is a fidelity request about the *state*
tensor, so on a delta ship it is resolved against the state's value range
(:func:`_rel_scales` → ``FedSZCompressor.bound_scales``), not the residual's
much smaller one.  A residual therefore carries exactly the absolute
per-element tolerance the same tensor's full-state ship would — and because
the residual spans only a few of those quantization steps, its entropy (and
payload) collapses, which is where the delta size win comes from.

The codec itself is stateless between rounds: the coordinator *arms* it per
ship with the reference, generation, accumulator, and (optionally) the
client's warm-codebook store, and reads everything that must persist out of
the encode report.  The armed codec pickles into transport workers with its
reference embedded; workers only read it, so process pools stay
bit-identical to the serial path.
"""

from __future__ import annotations

import struct
from collections import OrderedDict

import numpy as np

from repro.compressors.codebook import CodebookStore
from repro.core.network import NetworkModel
from repro.fl.codec import UpdateCodec, UpdateStreamDecoder, UpdateStreamEncoder
from repro.utils.serialization import pack_arrays, unpack_arrays

__all__ = ["DeltaUpdateCodec", "DeltaChannel", "DeltaTracker", "FRAME_MAGIC",
           "MODE_FULL", "MODE_DELTA", "pack_frame", "parse_frame",
           "ef_residual", "reconstruct", "advance_accumulator",
           "pack_sidecar", "restore_sidecar"]

FRAME_MAGIC = b"FDL5"
_FRAME = struct.Struct("<4sBQ")  # magic, mode, generation
MODE_FULL = 0
MODE_DELTA = 1


def pack_frame(mode: int, generation: int) -> bytes:
    """Serialize the 13-byte v5 delta frame."""
    return _FRAME.pack(FRAME_MAGIC, mode, generation)


def parse_frame(payload: bytes) -> tuple[int, int, int]:
    """Parse and validate a v5 frame; returns ``(mode, generation, offset)``."""
    if len(payload) < _FRAME.size:
        raise ValueError(f"truncated delta frame: {len(payload)} of "
                         f"{_FRAME.size} bytes")
    magic, mode, generation = _FRAME.unpack_from(payload, 0)
    if magic != FRAME_MAGIC:
        raise ValueError("not a delta-framed update (bad FDL5 magic)")
    if mode not in (MODE_FULL, MODE_DELTA):
        raise ValueError(f"corrupt delta frame: unknown mode {mode}")
    return mode, generation, _FRAME.size


# ---------------------------------------------------------------------------
# canonical kernels — the only places delta arithmetic happens
def ef_residual(state: dict, reference: dict,
                acc: "dict | None") -> "OrderedDict[str, np.ndarray]":
    """The residual dict a client ships: ``(state − reference) + acc``.

    Float tensors subtract in float64, add the float64 accumulator, and cast
    back to the state dtype so the wire dict is shaped and typed exactly like
    a full state (the inner codec plans it identically).  Non-float tensors
    difference in native dtype (wraparound-exact, no accumulator).
    """
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name, arr in state.items():
        ref = reference.get(name)
        if ref is None or ref.shape != arr.shape:
            raise ValueError(f"reference state does not match the update: "
                             f"tensor {name!r} missing or reshaped")
        if arr.dtype.kind == "f":
            res = arr.astype(np.float64) - ref.astype(np.float64)
            if acc is not None and name in acc:
                res = res + acc[name]
            out[name] = res.astype(arr.dtype)
        else:
            out[name] = np.subtract(arr, ref.astype(arr.dtype, copy=False))
    return out


def reconstruct(reference: dict,
                residual: dict) -> "OrderedDict[str, np.ndarray]":
    """Invert :func:`ef_residual` on the server: ``reference + residual``."""
    out: "OrderedDict[str, np.ndarray]" = OrderedDict()
    for name, res in residual.items():
        ref = reference.get(name)
        if ref is None or ref.shape != res.shape:
            raise ValueError(f"decoded residual does not match the reference: "
                             f"tensor {name!r} missing or reshaped")
        if res.dtype.kind == "f":
            out[name] = (ref.astype(np.float64)
                         + res.astype(np.float64)).astype(res.dtype)
        else:
            out[name] = np.add(ref.astype(res.dtype, copy=False), res)
    return out


def advance_accumulator(state: dict, recon: dict,
                        acc: "dict | None") -> dict[str, np.ndarray]:
    """Next round's accumulator: ``(state − recon) + acc`` in float64.

    ``recon`` is the state the *server* holds for this client after decoding
    (full or reconstructed-from-delta); passing ``acc=None`` resets the
    accumulator, which is exactly the full-ship semantics.  Only float
    tensors accumulate — everything else roundtrips exactly.
    """
    out: dict[str, np.ndarray] = {}
    for name, arr in state.items():
        if arr.dtype.kind != "f":
            continue
        err = arr.astype(np.float64) - recon[name].astype(np.float64)
        if acc is not None and name in acc:
            err = err + acc[name]
        out[name] = err
    return out


def _rel_scales(state: dict) -> dict[str, float]:
    """Per-tensor REL-bound resolution scales of the *true* state.

    A REL error bound is a fidelity request about the state tensor; resolving
    it against the residual's much smaller range would tighten the effective
    quantization step by the state/residual range ratio — silently exceeding
    the requested fidelity and forfeiting most of the delta size win.  These
    scales (mirroring :meth:`ErrorBound.absolute`'s REL resolution, including
    the constant-tensor fallback) let the inner pipeline quantize the residual
    under exactly the absolute tolerance a full-state ship would use.
    """
    scales: dict[str, float] = {}
    for name, arr in state.items():
        arr = np.asarray(arr)
        if arr.dtype.kind != "f" or arr.size == 0:
            continue
        value_range = float(np.max(arr) - np.min(arr))
        if value_range == 0.0:
            value_range = max(abs(float(arr.flat[0])), 1.0) * 1e-6
        scales[name] = value_range
    return scales


class DeltaChannel:
    """Per-client cross-round delta state, owned by the coordinator.

    ``ready`` gates delta eligibility: it only turns on after the client's
    first completed ship (so round 0 always ships full), and is dropped —
    together with the accumulator and pinned codebooks — whenever the
    reference can no longer be trusted (dropout, roster change, a resume
    that cannot restore the sidecar).  ``generation`` is the round index the
    client's server-acknowledged state was produced under; the frame tag is
    checked against it at decode.  ``degrade`` records why the most recent
    ship fell back to full mode (surfaced in ``RoundRecord``).
    """

    __slots__ = ("client_id", "ready", "generation", "acc", "codebooks",
                 "degrade")

    def __init__(self, client_id: int,
                 drift_threshold: "float | None" = None) -> None:
        self.client_id = client_id
        self.ready = False
        self.generation = -1
        self.acc: "dict[str, np.ndarray] | None" = None
        self.codebooks = CodebookStore() if drift_threshold is None \
            else CodebookStore(drift_threshold)
        self.degrade: "str | None" = None

    def invalidate(self, reason: str) -> None:
        """Drop the reference, accumulator, and pinned codebooks."""
        self.ready = False
        self.generation = -1
        self.acc = None
        self.codebooks.invalidate()
        self.degrade = reason


class _DeltaStreamEncoder(UpdateStreamEncoder):
    """Streams the frame, then the inner encoder's pieces, in wire order."""

    def __init__(self, codec: "DeltaUpdateCodec") -> None:
        self._codec = codec
        self.report = None
        self.peak_scratch_bytes = 0

    def chunks(self, state: dict[str, np.ndarray]):
        codec = self._codec
        inner = codec.inner.stream_encoder()
        compressor = None
        if codec._armed_delta:
            yield pack_frame(MODE_DELTA, codec._generation)
            payload_state = ef_residual(state, codec._require_reference(
                codec._generation), codec._acc)
            compressor = getattr(codec.inner, "compressor", None)
            if compressor is not None:
                compressor.bound_scales = _rel_scales(state)
        else:
            yield pack_frame(MODE_FULL, max(codec._generation, 0))
            payload_state = state
        try:
            yield from inner.chunks(payload_state)
        finally:
            if compressor is not None:
                compressor.bound_scales = None
        self.report = inner.report
        self.peak_scratch_bytes = inner.peak_scratch_bytes


class _DeltaStreamDecoder(UpdateStreamDecoder):
    """Absorbs the frame, validates the generation at the earliest byte,
    then forwards everything to the inner codec's stream decoder."""

    def __init__(self, codec: "DeltaUpdateCodec") -> None:
        self._codec = codec
        self._head = bytearray()
        self._mode: "int | None" = None
        self._inner: "UpdateStreamDecoder | None" = None
        self._result = None

    @property
    def decode_seconds(self) -> float:
        return self._inner.decode_seconds if self._inner is not None else 0.0

    def feed(self, data) -> None:
        if self._result is not None:
            raise ValueError("cannot feed a finished update stream decoder")
        data = memoryview(data)
        if self._inner is None:
            take = min(_FRAME.size - len(self._head), data.nbytes)
            self._head += data[:take]
            data = data[take:]
            if len(self._head) < _FRAME.size:
                return
            self._mode, generation, _ = parse_frame(bytes(self._head))
            if self._mode == MODE_DELTA:
                # fail at the earliest byte that proves a stale reference
                self._codec._require_reference(generation)
            self._inner = self._codec.inner.stream_decoder()
        if data.nbytes:
            self._inner.feed(data)

    def finish(self):
        if self._result is None:
            if self._inner is None:
                parse_frame(bytes(self._head))  # raises the truncation error
                raise ValueError("truncated delta frame")
            state, report = self._inner.finish()
            if self._mode == MODE_DELTA:
                state = reconstruct(
                    self._codec._require_reference(self._codec._generation),
                    state)
            self._result = (state, report)
        return self._result


class DeltaUpdateCodec(UpdateCodec):
    """Wrap an update codec with v5 delta framing and error feedback.

    The wrapper is armed per ship by the coordinator (:meth:`arm`) with the
    reference state, its generation, the client's accumulator, and the
    client's warm-codebook store; :meth:`disarm` drops the references so a
    parked codec never pins a stale state dict in memory.  Unarmed codecs
    encode full-state frames (mode 0) — the always-safe degrade path.

    ``use_codebooks=False`` is the ablation knob: delta framing and error
    feedback stay on, but every encode builds fresh Huffman tables.
    """

    def __init__(self, inner: UpdateCodec, use_codebooks: bool = True) -> None:
        self.inner = inner
        self.name = f"delta+{inner.name}"
        self.use_codebooks = use_codebooks
        self._reference: "dict | None" = None
        self._generation = -1
        self._armed_delta = False
        self._acc: "dict | None" = None

    # -- arming --------------------------------------------------------
    def arm(self, reference: "dict | None", generation: int, *, delta: bool,
            acc: "dict | None" = None,
            codebooks: "CodebookStore | None" = None) -> None:
        """Arm this codec for one client's ship (encode *and* decode side)."""
        if delta and reference is None:
            raise ValueError("cannot arm a delta ship without a reference state")
        self._reference = reference
        self._generation = int(generation)
        self._armed_delta = bool(delta)
        self._acc = acc
        compressor = getattr(self.inner, "compressor", None)
        if compressor is not None:
            compressor.codebook = codebooks if (delta and self.use_codebooks) \
                else None
            # the compression policy profiles residual tensors separately
            # from full states (see ProfiledPolicy) — same shapes, wildly
            # different content statistics
            compressor.delta_hint = bool(delta)

    def disarm(self) -> None:
        """Release the armed reference/accumulator/codebook references."""
        self._reference = None
        self._generation = -1
        self._armed_delta = False
        self._acc = None
        compressor = getattr(self.inner, "compressor", None)
        if compressor is not None:
            compressor.codebook = None
            compressor.delta_hint = False
            compressor.bound_scales = None

    def detached(self) -> "DeltaUpdateCodec":
        """A shallow clone without the reference state (for pickling).

        The transport ships the (large, per-round-unique) reference through
        one shared-memory arena instead of pickling it into every task; the
        worker re-attaches via :meth:`attach_reference`.  A detached codec
        that is asked to encode or decode a delta fails loudly through
        :meth:`_require_reference`.
        """
        clone = object.__new__(DeltaUpdateCodec)
        clone.__dict__.update(self.__dict__)
        clone._reference = None
        return clone

    def attach_reference(self, reference: dict) -> None:
        """Re-attach a reference shipped out of band (worker side)."""
        self._reference = reference

    def _require_reference(self, generation: int) -> dict:
        if self._reference is None:
            raise ValueError("delta-framed update but no reference state is "
                             "armed; the sender and receiver disagree about "
                             "this client's acknowledged state")
        if generation != self._generation:
            raise ValueError(f"delta update against reference generation "
                             f"{generation} but generation {self._generation} "
                             f"is armed; refusing to decode against the wrong "
                             f"reference")
        return self._reference

    # -- codec surface -------------------------------------------------
    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        payload, _ = self.encode_with_report(state)
        return payload

    def encode_with_report(self, state: dict[str, np.ndarray]):
        if self._armed_delta:
            residual = ef_residual(state, self._require_reference(
                self._generation), self._acc)
            compressor = getattr(self.inner, "compressor", None)
            if compressor is not None:
                compressor.bound_scales = _rel_scales(state)
            try:
                inner_payload, report = self.inner.encode_with_report(residual)
            finally:
                if compressor is not None:
                    compressor.bound_scales = None
            return pack_frame(MODE_DELTA, self._generation) + inner_payload, report
        inner_payload, report = self.inner.encode_with_report(state)
        return pack_frame(MODE_FULL, max(self._generation, 0)) + inner_payload, report

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        mode, generation, offset = parse_frame(payload)
        if mode == MODE_DELTA:
            reference = self._require_reference(generation)
            return reconstruct(reference, self.inner.decode(payload[offset:]))
        return self.inner.decode(payload[offset:])

    def for_network(self, network: NetworkModel) -> "DeltaUpdateCodec":
        resolved = self.inner.for_network(network)
        if resolved is self.inner:
            return self
        return DeltaUpdateCodec(resolved, use_codebooks=self.use_codebooks)

    def stream_decoder(self) -> _DeltaStreamDecoder:
        return _DeltaStreamDecoder(self)

    def stream_encoder(self) -> _DeltaStreamEncoder:
        return _DeltaStreamEncoder(self)

    @property
    def profiler(self):
        return self.inner.profiler

    @property
    def last_report(self):
        return getattr(self.inner, "last_report", None)


# ---------------------------------------------------------------------------
# journal sidecar — the per-client state that must survive a crash
_SIDECAR_ACC = "acc::"
_SIDECAR_CB = "cb::"
_SIDECAR_META = "meta::generation"


def pack_sidecar(channel: DeltaChannel) -> bytes:
    """Serialize a channel's durable state (generation, accumulator, pinned
    codebook tables) with :func:`pack_arrays` — float64 accumulators roundtrip
    bit-exactly, so a resumed run re-encodes byte-identical payloads."""
    arrays: "OrderedDict[str, np.ndarray]" = OrderedDict()
    arrays[_SIDECAR_META] = np.array([channel.generation], dtype=np.int64)
    for name in sorted(channel.acc or {}):
        arrays[_SIDECAR_ACC + name] = channel.acc[name]
    for key, table in sorted(channel.codebooks.snapshot().items()):
        arrays[_SIDECAR_CB + key] = np.frombuffer(table, dtype=np.uint8)
    return pack_arrays(arrays)


def restore_sidecar(channel: DeltaChannel, blob: bytes) -> None:
    """Invert :func:`pack_sidecar` onto ``channel``, marking it ready.

    Raises :class:`ValueError` on a corrupt blob — the caller degrades the
    client to a full-state ship instead of decoding against a wrong state.
    """
    arrays = unpack_arrays(blob)
    meta = arrays.get(_SIDECAR_META)
    if meta is None or meta.size != 1:
        raise ValueError("corrupt delta sidecar: missing generation")
    acc: dict[str, np.ndarray] = {}
    tables: dict[str, bytes] = {}
    for key, arr in arrays.items():
        if key.startswith(_SIDECAR_ACC):
            acc[key[len(_SIDECAR_ACC):]] = np.asarray(arr, dtype=np.float64)
        elif key.startswith(_SIDECAR_CB):
            tables[key[len(_SIDECAR_CB):]] = arr.tobytes()
    channel.generation = int(meta[0])
    channel.acc = acc
    channel.codebooks.restore(tables)
    channel.ready = True
    channel.degrade = None


class DeltaTracker:
    """Coordinator-side owner of every client's :class:`DeltaChannel`.

    The tracker is the single mutation point for cross-round delta state:
    :meth:`begin_round` arms each participant's codec (delta when the
    channel is ready, full otherwise) and invalidates dropped clients;
    :meth:`complete_ship` runs the canonical error-feedback advance and
    returns the journal sidecar; :meth:`adopt_replayed` and :meth:`restore`
    rebuild channels from the journal so crash-resume re-encodes
    bit-identical payloads.  Invalidation reasons surfaced in
    ``RoundRecord.delta_degrades``: ``cold`` (first ship), ``dropout``,
    ``late``, ``roster-change``, ``resume-loss`` (sidecar missing/corrupt on
    resume), ``replay-loss`` (late replay without its reference snapshot).

    Dropout invalidation is protocol fidelity, not algebra: the reference is
    the *current* round's broadcast, so a returning client could in principle
    delta-ship immediately — but a real deployment cannot trust that a client
    that vanished kept its accumulator, so the reproduction doesn't either.
    """

    def __init__(self, codecs: "dict[int, DeltaUpdateCodec]") -> None:
        self.channels = {cid: DeltaChannel(cid) for cid in codecs}
        self._codecs = codecs
        self._signature: "object | None" = None
        self._round = -1
        self._round_modes: dict[int, bool] = {}
        self._round_degrades: dict[int, str] = {}
        self._armed_acc: "dict[int, dict | None]" = {}

    def begin_round(self, round_index: int, global_state: dict, plan,
                    roster_signature: object) -> None:
        """Arm every participant's codec against this round's broadcast."""
        if self._signature is not None and roster_signature != self._signature:
            for channel in self.channels.values():
                channel.invalidate("roster-change")
        self._signature = roster_signature
        for cid in plan.dropped:
            if cid in self.channels:
                self.channels[cid].invalidate("dropout")
        self._round = round_index
        self._round_modes = {}
        self._round_degrades = {}
        self._armed_acc = {}
        for cid in plan.participants:
            channel = self.channels.get(cid)
            if channel is None:
                continue  # mixed fleet: this client ships a plain codec
            delta = channel.ready
            self._codecs[cid].arm(global_state, round_index, delta=delta,
                                  acc=channel.acc,
                                  codebooks=channel.codebooks)
            self._round_modes[cid] = delta
            if not delta:
                self._round_degrades[cid] = channel.degrade or "cold"
            self._armed_acc[cid] = channel.acc if delta else None

    def complete_ship(self, client_id: int, trained_state: dict,
                      recon_state: dict, report,
                      sidecar: bool = True) -> "bytes | None":
        """Fold one on-time arrival: advance the accumulator, commit the
        codebook records, and (optionally) build the journal sidecar."""
        channel = self.channels.get(client_id)
        if channel is None:
            return None  # mixed fleet: nothing to track for a plain codec
        channel.acc = advance_accumulator(trained_state, recon_state,
                                          self._armed_acc.get(client_id))
        channel.ready = True
        channel.generation = self._round
        channel.degrade = None
        codebooks = getattr(report, "codebooks", None) if report is not None \
            else None
        if codebooks:
            channel.codebooks.commit(codebooks)
        return pack_sidecar(channel) if sidecar else None

    def invalidate(self, client_id: int, reason: str) -> None:
        """Drop a client's reference state (late ship, dropout, ...)."""
        if client_id in self.channels:
            self.channels[client_id].invalidate(reason)
            if client_id in self._round_modes:
                self._round_modes[client_id] = False
                self._round_degrades[client_id] = reason

    def adopt_replayed(self, client_id: int, blob: "bytes | None",
                       late: bool) -> None:
        """Rebuild a channel from a replayed ship's journal sidecar."""
        channel = self.channels.get(client_id)
        if channel is None:
            return
        if late:
            # through invalidate() so the round's mode bookkeeping matches
            # what the interrupted run recorded for this client
            self.invalidate(client_id, "late")
            return
        if blob is None:
            channel.invalidate("resume-loss")
            return
        try:
            restore_sidecar(channel, blob)
        except ValueError:
            channel.invalidate("resume-loss")

    def restore(self, delta_state: "dict[int, dict]", loader) -> None:
        """Rebuild every channel from the journal's per-client delta state.

        ``loader`` maps a sidecar path to its bytes (or ``None`` on any
        read/parse failure) — journal damage degrades to a full ship, never
        a wrong-reference decode.
        """
        for cid, info in delta_state.items():
            channel = self.channels.get(cid)
            if channel is None:
                continue
            path = info.get("sidecar")
            if path is None:
                degrade = info.get("degrade")
                if degrade is not None:
                    channel.invalidate(degrade)
                # else: never shipped — leave the channel genuinely cold
                continue
            blob = loader(path)
            if blob is None:
                channel.invalidate("resume-loss")
                continue
            try:
                restore_sidecar(channel, blob)
            except ValueError:
                channel.invalidate("resume-loss")

    def round_summary(self) -> "tuple[list[int], dict[int, str], dict[str, int]]":
        """This round's ``(delta_clients, delta_degrades, codebook_counters)``.

        Codebook counters are cumulative across the run and measurement-only
        (they reset on resume), mirroring the profile-cache counters.
        """
        delta_clients = sorted(cid for cid, mode in self._round_modes.items()
                               if mode)
        counters = {"reuses": 0, "drifts": 0, "misses": 0}
        for channel in self.channels.values():
            for key, value in channel.codebooks.counters.items():
                counters[key] += value
        return delta_clients, dict(self._round_degrades), counters

    def disarm_all(self) -> None:
        """Release every armed codec (end of round)."""
        for codec in self._codecs.values():
            codec.disarm()

"""Deciding whether (and how) to compress on a bandwidth-constrained edge device.

The paper's motivating scenario is an edge client (autonomous vehicle,
Raspberry-Pi-class gateway) that must upload a model update over a slow,
variable wide-area link.  This example walks through the decision procedure the
paper formalizes:

1. profile the candidate error-bounded compressors on the actual update
   (Problem 1, Eqn. 2),
2. evaluate Eqn. (1) over a range of bandwidths to find where compression stops
   paying off (Figure 8's crossover),
3. print a recommendation per bandwidth.

Run with::

    python examples/edge_bandwidth_planning.py [--model resnet50]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import (
    DeviceProfile,
    communication_time,
    compression_is_worthwhile,
    crossover_bandwidth,
    select_compressor,
)
from repro.nn import build_model
from repro.utils.timer import format_bytes, format_seconds

BANDWIDTHS = (1, 10, 50, 100, 500, 1000, 10_000)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet50", help="model whose update is being shipped")
    parser.add_argument("--bound", type=float, default=1e-2, help="relative error bound")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    model = build_model(args.model, num_classes=10, in_channels=3, image_size=32)
    state = model.state_dict()
    weights = np.concatenate([v.ravel() for k, v in state.items()
                              if "weight" in k and v.size > 1024])
    pi5 = DeviceProfile()

    print(f"update: {args.model}, {format_bytes(weights.nbytes)} of lossy-compressible weights\n")

    print("step 1 - profile the candidate compressors (Problem 1):")
    best, grid = select_compressor(weights, candidates=("sz2", "sz3", "szx", "zfp"),
                                   error_bounds=(args.bound,), bandwidth_mbps=10.0)
    for entry in grid:
        print(f"  {entry.compressor:4s}  ratio {entry.ratio:6.2f}x  "
              f"compress {format_seconds(entry.compress_seconds)}  "
              f"decompress {format_seconds(entry.decompress_seconds)}  "
              f"feasible={entry.feasible}")
    print(f"  -> selected: {best.compressor} (ratio {best.ratio:.2f}x)\n")

    compressed_bytes = weights.nbytes / best.ratio
    overhead = pi5.scale(best.compress_seconds + best.decompress_seconds)
    crossover = crossover_bandwidth(overhead, 0.0, weights.nbytes, compressed_bytes)
    print(f"step 2 - Eqn. (1) crossover with Pi-5-scaled overhead: {crossover:,.0f} Mbps\n")

    print("step 3 - recommendation per uplink bandwidth:")
    for bandwidth in BANDWIDTHS:
        plain = communication_time(weights.nbytes, bandwidth)
        with_fedsz = overhead + communication_time(compressed_bytes, bandwidth)
        decision = "compress with FedSZ" if compression_is_worthwhile(
            overhead, 0.0, weights.nbytes, compressed_bytes, bandwidth) else "send uncompressed"
        print(f"  {bandwidth:>6,} Mbps: raw {format_seconds(plain):>9}  "
              f"FedSZ {format_seconds(with_fedsz):>9}  ->  {decision}")


if __name__ == "__main__":
    main()

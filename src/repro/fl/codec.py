"""Update codecs: how a client ``state_dict`` becomes bytes on the wire.

FedSZ is a "last step" in the communication pipeline (Section III-C of the
paper): any serialization scheme can sit behind the same interface.  Two
codecs are provided — :class:`RawUpdateCodec` (the uncompressed baseline, a
plain packed-array serialization standing in for pickled tensors) and
:class:`FedSZUpdateCodec` (the paper's contribution).
"""

from __future__ import annotations

import abc
from collections import OrderedDict

import numpy as np

from repro.core.config import FedSZConfig
from repro.core.pipeline import FedSZCompressor, FedSZReport
from repro.utils.serialization import pack_arrays, unpack_arrays

__all__ = ["UpdateCodec", "RawUpdateCodec", "FedSZUpdateCodec"]


class UpdateCodec(abc.ABC):
    """Serialize/deserialize a model state dict for transmission."""

    name: str = "base"

    @abc.abstractmethod
    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        """Turn a state dict into wire bytes."""

    @abc.abstractmethod
    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        """Recover a state dict from wire bytes."""


class RawUpdateCodec(UpdateCodec):
    """Uncompressed baseline: packed float32 tensors, no reduction."""

    name = "uncompressed"

    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return pack_arrays(dict(state))

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(unpack_arrays(payload))


class FedSZUpdateCodec(UpdateCodec):
    """FedSZ compression of client updates (the paper's scheme)."""

    name = "fedsz"

    def __init__(self, config: FedSZConfig | None = None) -> None:
        self.config = config or FedSZConfig()
        self.compressor = FedSZCompressor(self.config)

    def encode(self, state: dict[str, np.ndarray]) -> bytes:
        return self.compressor.compress_state_dict(state)

    def decode(self, payload: bytes) -> "OrderedDict[str, np.ndarray]":
        return self.compressor.decompress_state_dict(payload)

    @property
    def last_report(self) -> FedSZReport | None:
        """Compression statistics of the most recent :meth:`encode` call."""
        return self.compressor.last_report

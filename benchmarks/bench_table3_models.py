"""Table III: model characteristics (parameters, size, % lossy data, FLOPs).

Profiles the three (scaled) paper models and reports the same columns as
Table III.  The assertions check the orderings the paper relies on: AlexNet is
the largest model with the highest lossy-compressible share, MobileNetV2 the
smallest with the lowest share.
"""

from __future__ import annotations

from bench_utils import PAPER_MODELS, save_results
from repro.core import FedSZConfig, lossy_fraction
from repro.metrics import ExperimentRecord, Table
from repro.nn import build_model, count_parameters, estimate_flops, state_dict_nbytes
from repro.utils.timer import format_bytes

#: Paper-reported values for side-by-side comparison in the rendered table.
PAPER_VALUES = {
    "mobilenetv2": {"parameters": 3.5e6, "size": "14MB", "lossy": 96.94, "flops": 0.35e9},
    "resnet50": {"parameters": 4.5e7, "size": "180MB", "lossy": 99.47, "flops": 8e9},
    "alexnet": {"parameters": 6.0e7, "size": "230MB", "lossy": 99.98, "flops": 0.75e9},
}


def bench_table3_models(benchmark):
    config = FedSZConfig(threshold=1024)

    def run():
        rows = []
        for name in PAPER_MODELS:
            model = build_model(name, num_classes=10, in_channels=3, image_size=32)
            state = model.state_dict()
            rows.append({
                "model": name,
                "parameters": count_parameters(model),
                "state_bytes": state_dict_nbytes(model),
                "lossy_fraction": lossy_fraction(state, config),
                "flops": estimate_flops(model, (3, 32, 32)),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Table III - model characteristics (scaled reproductions)",
                  ["model", "parameters", "state size", "% lossy data", "FLOPs",
                   "paper params", "paper % lossy"])
    record = ExperimentRecord("table3", "model profiles: params, size, lossy share, FLOPs")
    for row in rows:
        paper = PAPER_VALUES[row["model"]]
        table.add_row(row["model"], f"{row['parameters']:,}", format_bytes(row["state_bytes"]),
                      f"{row['lossy_fraction']:.2%}", f"{row['flops']/1e6:.1f}M",
                      f"{paper['parameters']:.1e}", f"{paper['lossy']:.2f}%")
        record.add(**row)
    save_results("table3_models", table, record)

    by_model = {r["model"]: r for r in rows}
    assert by_model["alexnet"]["parameters"] > by_model["resnet50"]["parameters"] \
        > by_model["mobilenetv2"]["parameters"]
    assert by_model["alexnet"]["lossy_fraction"] > by_model["resnet50"]["lossy_fraction"] \
        > by_model["mobilenetv2"]["lossy_fraction"]
    assert by_model["alexnet"]["lossy_fraction"] > 0.95

"""Error-bound guarantee matrix: every registered EBLC × mode × dtype.

Each registered error-bounded lossy compressor is driven in both ``abs`` and
``rel`` mode, on float32 and float64 data, against adversarial inputs —
constants, NaN-free extremes near the dtype's limits, denormals, and
spiky mixtures — and must keep ``max|x - x̂|`` within the resolved absolute
bound.  These inputs historically exposed three real bugs (int64 overflow in
the linear quantizer, a uint64 overflow in SZx's fixed-point stage, and SZ3's
float32 anchor storage), so the matrix is the regression fence for all of
them.

ZFP is included: in its derived-precision mode (the only mode this suite
constructs) it self-validates each block and escapes to verbatim storage, so
the bound is hard there too; only an explicitly requested precision opts out.
"""

import numpy as np
import pytest

from repro.compressors.base import ErrorBoundMode
from repro.compressors.registry import available_lossy, get_lossy

DTYPES = [np.float32, np.float64]
MODES = [ErrorBoundMode.ABS, ErrorBoundMode.REL]
BOUNDS = [1e-2, 1e-4]


def _adversarial_inputs(dtype) -> dict[str, np.ndarray]:
    """NaN-free inputs at the nasty corners of the dtype's value space."""
    is_f32 = np.dtype(dtype) == np.float32
    denormal = 1e-40 if is_f32 else 5e-310
    extreme = 1e30 if is_f32 else 1e300
    rng = np.random.default_rng(7)
    spiky = rng.normal(0.0, 0.05, 400)
    spiky[rng.random(400) < 0.01] = extreme
    # near the very top of the dtype's finite range (for float64 this sits
    # past the 2**1023 threshold where a block-exponent scale overflows to
    # inf — the regression case for ZFP's NaN-reconstruction escape)
    near_max = 2e38 if is_f32 else 8e307
    return {
        "constant": np.full(513, 3.141592, dtype=dtype),
        "constant_zero": np.zeros(257, dtype=dtype),
        "single_value": np.array([-2.5], dtype=dtype),
        "ramp_extreme": np.linspace(-extreme, extreme, 511).astype(dtype),
        "near_dtype_max": np.linspace(0.5 * near_max, near_max, 129).astype(dtype),
        # constant at ~95% of the dtype's max: `(max + min) / 2` would
        # overflow to inf here (the historical SZx constant-block bug)
        "huge_constant": np.full(130, 3.2e38 if is_f32 else 1.7e308, dtype=dtype),
        "denormals": (rng.uniform(-1.0, 1.0, 300) * denormal).astype(dtype),
        "alternating_extremes": np.tile(np.array([extreme, -extreme], dtype=dtype), 128),
        "spiky": spiky.astype(dtype),
    }


@pytest.mark.parametrize("name", available_lossy())
@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
@pytest.mark.parametrize("dtype", DTYPES, ids=["float32", "float64"])
@pytest.mark.parametrize("bound", BOUNDS)
def test_bound_holds_on_adversarial_inputs(name, mode, dtype, bound):
    for label, data in _adversarial_inputs(dtype).items():
        comp = get_lossy(name, error_bound=bound, mode=mode)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == data.shape, f"{label}: shape changed"
        assert recon.dtype == data.dtype, f"{label}: dtype changed"
        abs_bound = comp.error_bound.absolute(data)
        err = float(np.max(np.abs(recon.astype(np.float64) - data.astype(np.float64))))
        # one float64 ULP of slack for the denormal regime, where every
        # arithmetic op rounds at the 5e-324 quantum
        assert err <= abs_bound * (1 + 1e-6) + 5e-324, (
            f"{name}/{mode.value}/{np.dtype(dtype).name}/{label}: "
            f"max error {err:.3e} exceeds bound {abs_bound:.3e}")
        assert np.all(np.isfinite(recon)), f"{label}: non-finite reconstruction"


@pytest.mark.parametrize("name", ["sz2", "sz3"])
def test_huge_bound_near_float64_max_stays_finite(name):
    """Regression: with a huge absolute bound, ``prediction + 2*bound*q`` can
    round past the float64 maximum even for tiny quotients; such positions
    must take the outlier escape instead of reconstructing as inf."""
    data = np.array([1.75e308, 1.60e308, 1.79e308, 1.71e308] * 40)
    comp = get_lossy(name, error_bound=1e307, mode=ErrorBoundMode.ABS)
    recon = comp.decompress(comp.compress(data))
    assert np.all(np.isfinite(recon))
    assert float(np.max(np.abs(recon - data))) <= 1e307 * (1 + 1e-6)


@pytest.mark.parametrize("name", available_lossy())
def test_bound_holds_on_empty_and_zero_d(name):
    comp = get_lossy(name, error_bound=1e-2, mode=ErrorBoundMode.ABS)
    empty = np.zeros(0, dtype=np.float32)
    recon = comp.decompress(comp.compress(empty))
    assert recon.shape == (0,)

    scalar = np.array(7.25, dtype=np.float32)
    recon = comp.decompress(comp.compress(scalar))
    assert recon.shape == ()
    assert abs(float(recon) - 7.25) <= 1e-2 * (1 + 1e-6)

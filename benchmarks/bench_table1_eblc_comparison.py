"""Table I: EBLC comparison across models for CIFAR-10.

For every (model, compressor, relative error bound) cell the benchmark measures
runtime, throughput, and compression ratio of compressing the model's
lossy-compressible weights, plus the Top-1 inference accuracy of the model
after its weights are replaced by the decompressed ones.  Each model is first
trained briefly on a synthetic CIFAR-10 split so the accuracy column is
meaningfully above chance; the full FL convergence comparison is Figure 4's
benchmark.
"""

from __future__ import annotations

import numpy as np

from bench_utils import PAPER_MODELS, is_quick, save_results
from repro.compressors import roundtrip
from repro.compressors.registry import get_lossy
from repro.core import DeviceProfile
from repro.data import make_dataset, train_test_split
from repro.metrics import ExperimentRecord, Table, format_bound
from repro.nn import CrossEntropyLoss, SGD, build_model
from repro.nn.module import Module

ERROR_BOUNDS = (1e-2, 1e-3, 1e-4)
COMPRESSORS = ("sz2", "sz3", "szx", "zfp")
PI5 = DeviceProfile()


def _accuracy(model: Module, images: np.ndarray, labels: np.ndarray) -> float:
    model.eval()
    return float((model(images).argmax(axis=1) == labels).mean())


def _train_briefly(model: Module, images: np.ndarray, labels: np.ndarray,
                   epochs: int, lr: float = 0.05, batch_size: int = 32) -> None:
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    model.train(True)
    for _ in range(epochs):
        for start in range(0, len(labels), batch_size):
            xb = images[start:start + batch_size]
            yb = labels[start:start + batch_size]
            loss_fn(model(xb), yb)
            model.zero_grad()
            model.backward(loss_fn.backward())
            optimizer.step()


def _split_weight_keys(state: dict[str, np.ndarray]) -> list[str]:
    return [k for k, v in state.items() if "weight" in k and v.size > 1024]


def bench_table1_eblc_comparison(benchmark):
    image_size = 16 if is_quick() else 32
    dataset = make_dataset("cifar10", n_samples=480 if is_quick() else 4096,
                           image_size=image_size, seed=11)
    train, test = train_test_split(dataset, test_fraction=0.3, seed=12)
    epochs = 6 if is_quick() else 10

    def run():
        rows = []
        for model_name in PAPER_MODELS:
            model = build_model(model_name, num_classes=10, in_channels=3,
                                image_size=image_size, seed=0)
            _train_briefly(model, train.images, train.labels, epochs=epochs)
            baseline_acc = _accuracy(model, test.images, test.labels)

            state = model.state_dict()
            weight_keys = _split_weight_keys(state)
            weights = np.concatenate([state[k].ravel() for k in weight_keys])

            eval_model = build_model(model_name, num_classes=10, in_channels=3,
                                     image_size=image_size, seed=1)
            for comp_name in COMPRESSORS:
                for bound in ERROR_BOUNDS:
                    compressor = get_lossy(comp_name, error_bound=bound)
                    recon, stats = roundtrip(compressor, weights)

                    perturbed = {k: v.copy() for k, v in state.items()}
                    cursor = 0
                    for key in weight_keys:
                        size = state[key].size
                        perturbed[key] = recon[cursor:cursor + size].reshape(
                            state[key].shape).astype(np.float32)
                        cursor += size
                    eval_model.load_state_dict(perturbed)
                    acc = _accuracy(eval_model, test.images, test.labels)
                    rows.append({
                        "model": model_name,
                        "compressor": comp_name,
                        "bound": bound,
                        "runtime_s": stats.compress_seconds,
                        "runtime_pi5_s": PI5.scale(stats.compress_seconds),
                        "throughput_mbps": stats.compress_throughput_mbps,
                        "ratio": stats.ratio,
                        "baseline_accuracy": baseline_acc,
                        "accuracy": acc,
                    })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Table I - EBLC comparison across models (CIFAR-10)",
                  ["model", "compressor", "REL bound", "runtime", "runtime (Pi-5 est.)",
                   "throughput MB/s", "ratio", "top-1 acc", "baseline acc"])
    record = ExperimentRecord("table1", "EBLC comparison: runtime, throughput, ratio, accuracy")
    for row in rows:
        table.add_row(row["model"], row["compressor"], format_bound(row["bound"]),
                      f"{row['runtime_s']*1e3:.1f}ms", f"{row['runtime_pi5_s']*1e3:.1f}ms",
                      f"{row['throughput_mbps']:.1f}", f"{row['ratio']:.2f}x",
                      f"{row['accuracy']:.2%}", f"{row['baseline_accuracy']:.2%}")
        record.add(**row)
    save_results("table1_eblc_comparison", table, record)

    # Paper's qualitative Table I findings.
    def mean_ratio(comp):
        return np.mean([r["ratio"] for r in rows if r["compressor"] == comp and r["bound"] == 1e-2])

    assert mean_ratio("sz2") > mean_ratio("zfp"), "SZ2 should out-compress ZFP on weights"
    sz2_rt = np.mean([r["runtime_s"] for r in rows if r["compressor"] == "sz2"])
    szx_rt = np.mean([r["runtime_s"] for r in rows if r["compressor"] == "szx"])
    assert szx_rt < sz2_rt, "SZx should be the fastest compressor"
    # accuracy at 1e-2 with SZ2 stays close to the uncompressed baseline
    for row in rows:
        if row["compressor"] == "sz2" and row["bound"] == 1e-2:
            assert abs(row["accuracy"] - row["baseline_accuracy"]) < 0.10

"""Compressor and error-bound selection (Problems 1 and 2, Section IV).

Problem 1 (Eqn. 2): among candidate EBLCs and error bounds, maximize the
compression ratio and minimize the runtime subject to the runtime staying below
the uncompressed transfer time and the ratio staying in ``[1, S]``.

Problem 2 (Eqn. 3): choose the error bound that minimizes communication cost
while keeping the inference-accuracy drop within a tolerance.

Both are solved by exhaustive evaluation over the (small) candidate grid, which
is exactly how the paper arrives at SZ2 + REL 1e-2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.compressors.base import ErrorBoundMode, roundtrip
from repro.compressors.registry import get_lossy
from repro.core.network import communication_time

__all__ = ["CandidateEvaluation", "select_compressor", "select_error_bound"]


@dataclass
class CandidateEvaluation:
    """Measured behaviour of one (compressor, error bound) candidate."""

    compressor: str
    error_bound: float
    ratio: float
    compress_seconds: float
    decompress_seconds: float
    max_abs_error: float
    feasible: bool

    @property
    def runtime(self) -> float:
        """Total compression + decompression runtime."""
        return self.compress_seconds + self.decompress_seconds


def _score(candidate: CandidateEvaluation, runtime_weight: float) -> float:
    """Scalarization of the two objectives (higher is better)."""
    return candidate.ratio - runtime_weight * candidate.runtime


def select_compressor(data: np.ndarray, candidates: Sequence[str] = ("sz2", "sz3", "szx", "zfp"),
                      error_bounds: Iterable[float] = (1e-2, 1e-3, 1e-4),
                      mode: ErrorBoundMode | str = ErrorBoundMode.REL,
                      bandwidth_mbps: float = 10.0, runtime_weight: float = 0.5,
                      ) -> tuple[CandidateEvaluation, list[CandidateEvaluation]]:
    """Solve Problem 1 on ``data`` by measuring every candidate.

    Returns the selected candidate (the best feasible scalarized score) and the
    full evaluation grid so callers can report the whole Table I-style
    comparison.
    """
    data = np.asarray(data)
    if data.size == 0:
        raise ValueError("cannot select a compressor for empty data")
    uncompressed_time = communication_time(data.nbytes, bandwidth_mbps)
    evaluations: list[CandidateEvaluation] = []
    for name in candidates:
        for bound in error_bounds:
            compressor = get_lossy(name, error_bound=bound, mode=mode)
            _, stats = roundtrip(compressor, data)
            feasible = (stats.compress_seconds < uncompressed_time
                        and 1.0 <= stats.ratio <= data.size)
            evaluations.append(CandidateEvaluation(
                compressor=name,
                error_bound=float(bound),
                ratio=stats.ratio,
                compress_seconds=stats.compress_seconds,
                decompress_seconds=stats.decompress_seconds,
                max_abs_error=stats.max_abs_error,
                feasible=feasible,
            ))
    feasible_set = [e for e in evaluations if e.feasible]
    pool = feasible_set if feasible_set else evaluations
    best = max(pool, key=lambda e: _score(e, runtime_weight))
    return best, evaluations


def select_error_bound(accuracy_fn: Callable[[float], float],
                       cost_fn: Callable[[float], float],
                       error_bounds: Iterable[float] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1),
                       baseline_accuracy: float | None = None,
                       tolerance: float = 0.005) -> float:
    """Solve Problem 2: the largest bound whose accuracy stays within tolerance.

    ``accuracy_fn(eps)`` returns validation accuracy with FedSZ at bound
    ``eps``; ``cost_fn(eps)`` returns the communication cost (e.g. compressed
    bytes).  ``baseline_accuracy`` defaults to the accuracy at the smallest
    bound, which approximates the uncompressed model.  Among bounds whose
    accuracy drop is within ``tolerance`` the one with the lowest cost is
    returned; if no bound qualifies the most accurate bound is returned.
    """
    bounds = sorted(float(b) for b in error_bounds)
    if not bounds:
        raise ValueError("error_bounds must be non-empty")
    accuracies = {b: float(accuracy_fn(b)) for b in bounds}
    costs = {b: float(cost_fn(b)) for b in bounds}
    reference = baseline_accuracy if baseline_accuracy is not None else accuracies[bounds[0]]
    acceptable = [b for b in bounds if reference - accuracies[b] <= tolerance]
    if acceptable:
        return min(acceptable, key=lambda b: costs[b])
    return max(bounds, key=lambda b: accuracies[b])

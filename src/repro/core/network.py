"""Network transfer model and the compression-benefit criterion (Eqn. 1).

The paper's decision rule: compression pays off when
``t_C + t_D + S'/B_N < S/B_N`` — the time to compress, decompress, and ship the
smaller payload must beat shipping the original.  :func:`crossover_bandwidth`
solves the equality for ``B_N``, reproducing Figure 8's ~500 Mbps crossover.

:class:`DeviceProfile` translates compression timings measured on the host CPU
into the edge-device (Raspberry Pi 5 class) timings Table I reports, and
:class:`NetworkModel` turns payload sizes into transfer times for the simulated
bandwidths of Figures 7-9 (optionally sleeping, mirroring the paper's
MPI-delay-injection methodology).

For multi-client rounds, :func:`make_client_networks` builds a heterogeneous
fleet of links (distinct bandwidth/latency per client) and
:func:`round_communication_time` combines the per-client transfer durations
into a round total under either uplink discipline: ``"serial"`` (clients share
the uplink one after another — the sum) or ``"parallel"`` (independent links,
the round waits for the slowest client — the max).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

__all__ = [
    "communication_time",
    "compression_is_worthwhile",
    "crossover_bandwidth",
    "end_to_end_seconds",
    "round_communication_time",
    "make_client_networks",
    "NetworkModel",
    "DeviceProfile",
]

#: Valid uplink disciplines for :func:`round_communication_time`.
UPLINK_MODES = ("serial", "parallel")


def communication_time(size_bytes: float, bandwidth_mbps: float, latency_s: float = 0.0) -> float:
    """Seconds to transfer ``size_bytes`` over a link of ``bandwidth_mbps`` (megabits/s)."""
    if bandwidth_mbps <= 0:
        raise ValueError("bandwidth must be positive")
    if size_bytes < 0:
        raise ValueError("size must be non-negative")
    return latency_s + (size_bytes * 8.0) / (bandwidth_mbps * 1e6)


def end_to_end_seconds(compress_s: float, decompress_s: float, payload_bytes: float,
                       bandwidth_mbps: float, latency_s: float = 0.0) -> float:
    """Left-hand side of Eqn. (1): ``t_C + t_D + S'/B_N`` for one payload.

    The quantity both Problems 1 and 2 minimize; the profiled plan policy
    evaluates it per candidate and per link.  Shipping uncompressed is the
    special case ``compress_s = decompress_s = 0`` with the original size.
    """
    return compress_s + decompress_s + communication_time(payload_bytes, bandwidth_mbps,
                                                          latency_s)


def compression_is_worthwhile(compress_s: float, decompress_s: float, original_bytes: float,
                              compressed_bytes: float, bandwidth_mbps: float,
                              latency_s: float = 0.0) -> bool:
    """Evaluate Eqn. (1): does compressing reduce the end-to-end transfer time?"""
    with_compression = end_to_end_seconds(compress_s, decompress_s, compressed_bytes,
                                          bandwidth_mbps, latency_s)
    without_compression = communication_time(original_bytes, bandwidth_mbps, latency_s)
    return with_compression < without_compression


def crossover_bandwidth(compress_s: float, decompress_s: float, original_bytes: float,
                        compressed_bytes: float) -> float:
    """Bandwidth (Mbps) at which compression stops being worthwhile.

    Below the returned bandwidth compression wins; above it the fixed
    compression cost dominates (Figure 8).  Returns ``inf`` when compression
    costs no time (always worthwhile) and ``0.0`` when it saves no bytes
    (never worthwhile).
    """
    saved_bytes = original_bytes - compressed_bytes
    overhead = compress_s + decompress_s
    # the no-savings check must come first: with zero overhead AND zero
    # savings, compression never helps at any bandwidth, so the crossover is
    # 0.0, not inf (inf would claim "always worthwhile" for a useless codec)
    if saved_bytes <= 0:
        return 0.0
    if overhead <= 0:
        return float("inf")
    return (saved_bytes * 8.0) / (overhead * 1e6)


def round_communication_time(durations: Iterable[float], uplink: str = "serial") -> float:
    """Combine per-client transfer durations into one round communication time.

    ``"serial"`` models clients taking turns on a shared uplink (the original
    simulator semantics): the total is the sum.  ``"parallel"`` models each
    client uploading simultaneously over its own link, so the round finishes
    when the slowest client does: the total is the max.
    """
    if uplink not in UPLINK_MODES:
        raise ValueError(f"uplink must be one of {UPLINK_MODES}, got {uplink!r}")
    durations = [float(d) for d in durations]
    if not durations:
        return 0.0
    return sum(durations) if uplink == "serial" else max(durations)


def make_client_networks(n_clients: int, base: "NetworkModel | None" = None,
                         bandwidth_spread: float = 1.0, latency_spread_s: float = 0.0,
                         seed: int | None = 0) -> "list[NetworkModel]":
    """Build a heterogeneous per-client fleet of :class:`NetworkModel` links.

    Each client's bandwidth is drawn log-uniformly from
    ``[base / bandwidth_spread, base * bandwidth_spread]`` and its latency
    uniformly from ``[base_latency, base_latency + latency_spread_s]``, so a
    spread of 1.0 and zero latency spread reproduce ``n_clients`` identical
    copies of ``base``.  The draw is seeded and therefore reproducible.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if bandwidth_spread < 1.0:
        raise ValueError("bandwidth_spread must be >= 1.0")
    if latency_spread_s < 0.0:
        raise ValueError("latency_spread_s must be non-negative")
    base = base or NetworkModel()
    rng = np.random.default_rng(seed)
    networks: list[NetworkModel] = []
    for _ in range(n_clients):
        bandwidth = base.bandwidth_mbps
        if bandwidth_spread > 1.0:
            bandwidth *= float(bandwidth_spread ** rng.uniform(-1.0, 1.0))
        latency = base.latency_s
        if latency_spread_s > 0.0:
            latency += float(rng.uniform(0.0, latency_spread_s))
        networks.append(replace(base, bandwidth_mbps=bandwidth, latency_s=latency))
    return networks


@dataclass(frozen=True)
class DeviceProfile:
    """Scales host-measured compute times to a target edge device.

    ``compute_factor`` is the ratio (target device time) / (host time); the
    default of 3.0 approximates a Raspberry Pi 5 relative to a workstation-class
    x86 core for NumPy-heavy workloads.  Used when reporting Table I-style edge
    timings from host measurements (the substitution is recorded in DESIGN.md).
    """

    name: str = "raspberry-pi-5"
    compute_factor: float = 3.0

    def scale(self, host_seconds: float) -> float:
        """Translate a host-measured duration to the profiled device."""
        return host_seconds * self.compute_factor


@dataclass
class NetworkModel:
    """A point-to-point link with fixed bandwidth and latency.

    ``simulate_delay=True`` reproduces the paper's methodology of injecting
    real sleeps proportional to the payload size into the communication path;
    with the default ``False`` the transfer time is returned analytically,
    which keeps the benchmark suite fast while producing identical numbers.
    """

    bandwidth_mbps: float = 10.0
    latency_s: float = 0.0
    simulate_delay: bool = False

    def transfer_time(self, size_bytes: float) -> float:
        """Seconds needed to move ``size_bytes`` across the link."""
        return communication_time(size_bytes, self.bandwidth_mbps, self.latency_s)

    def packet_arrivals(self, size_bytes: int, packet_bytes: int,
                        slowdown: float = 1.0) -> "list[tuple[int, float]]":
        """Analytic per-packet arrival schedule for one transfer.

        Splits ``size_bytes`` into ``packet_bytes`` segments and returns one
        ``(prefix_end_byte, arrival_seconds)`` pair per packet, where a prefix
        arrives at ``(latency + prefix_bits / bandwidth) * slowdown``.  The
        last entry's arrival therefore equals ``transfer_time(size_bytes) *
        slowdown`` exactly — a streaming consumer paced by this schedule
        observes the same total transfer the batch path records.  An empty
        payload still yields one zero-length packet at the latency, so stream
        completion stays an observable event.
        """
        if packet_bytes < 1:
            raise ValueError("packet_bytes must be >= 1")
        size = int(size_bytes)
        ends = list(range(packet_bytes, size, packet_bytes)) + [size]
        return [(end, communication_time(end, self.bandwidth_mbps,
                                         self.latency_s) * slowdown)
                for end in ends]

    def transfer(self, size_bytes: float) -> float:
        """Model one transfer; sleeps for the transfer time when simulating."""
        duration = self.transfer_time(size_bytes)
        if self.simulate_delay:
            time.sleep(duration)
        return duration

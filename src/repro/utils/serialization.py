"""Binary serialization of array dictionaries and byte dictionaries.

The FedSZ pipeline ships a client update as a single bitstream.  The paper uses
``pickle``; this reproduction uses an explicit, versioned, length-prefixed
format instead so the layout is documented, deterministic, and safe to
deserialize on the server side.  Every declared length is bounds-checked
against the remaining buffer, so a truncated or corrupted bitstream raises
:class:`ValueError` instead of leaking ``struct.error`` / ``IndexError`` or
silently returning short data.

Layout (all integers little-endian):

``pack_bytes_dict``::

    magic  b"FSZB"
    u32    number of entries
    per entry:
        u32  key length, key bytes (utf-8)
        u64  value length, value bytes

``pack_arrays`` uses the same outer structure but each value is an array
record: dtype string, ndim, shape, raw bytes.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["MAX_NDIM", "pack_bytes_dict", "unpack_bytes_dict", "pack_arrays",
           "unpack_arrays", "packed_arrays_nbytes"]

_MAGIC_BYTES = b"FSZB"
_MAGIC_ARRAYS = b"FSZA"

#: np.ndarray.ndim is capped at 64 in NumPy; anything larger is corruption.
#: Shared by every deserializer that parses a shape (see compressors/base.py).
MAX_NDIM = 64


def _require(buf: memoryview, offset: int, needed: int, what: str) -> None:
    """Raise ``ValueError`` unless ``needed`` bytes remain at ``offset``."""
    if needed < 0 or offset + needed > len(buf):
        raise ValueError(
            f"truncated or corrupt buffer: {what} needs {needed} bytes at offset "
            f"{offset}, but only {max(len(buf) - offset, 0)} remain")


def _pack_str(out: list[bytes], text: str) -> None:
    raw = text.encode("utf-8")
    out.append(struct.pack("<I", len(raw)))
    out.append(raw)


def _unpack_str(buf: memoryview, offset: int, what: str) -> tuple[str, int]:
    _require(buf, offset, 4, f"{what} length")
    (length,) = struct.unpack_from("<I", buf, offset)
    offset += 4
    _require(buf, offset, length, what)
    text = bytes(buf[offset : offset + length]).decode("utf-8")
    return text, offset + length


def pack_bytes_dict(entries: dict[str, bytes]) -> bytes:
    """Serialize a ``{name: bytes}`` mapping into a single buffer."""
    out: list[bytes] = [_MAGIC_BYTES, struct.pack("<I", len(entries))]
    for key, value in entries.items():
        _pack_str(out, key)
        out.append(struct.pack("<Q", len(value)))
        out.append(bytes(value))
    return b"".join(out)


def unpack_bytes_dict(data: bytes) -> dict[str, bytes]:
    """Inverse of :func:`pack_bytes_dict`."""
    buf = memoryview(data)
    if bytes(buf[:4]) != _MAGIC_BYTES:
        raise ValueError("not a packed bytes dictionary (bad magic)")
    _require(buf, 4, 4, "entry count")
    (count,) = struct.unpack_from("<I", buf, 4)
    offset = 8
    result: dict[str, bytes] = {}
    for _ in range(count):
        key, offset = _unpack_str(buf, offset, "entry key")
        _require(buf, offset, 8, f"length of value {key!r}")
        (length,) = struct.unpack_from("<Q", buf, offset)
        offset += 8
        _require(buf, offset, length, f"value {key!r}")
        result[key] = bytes(buf[offset : offset + length])
        offset += length
    return result


def pack_arrays(arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize a ``{name: ndarray}`` mapping (dtype and shape preserved)."""
    out: list[bytes] = [_MAGIC_ARRAYS, struct.pack("<I", len(arrays))]
    for key, arr in arrays.items():
        arr = np.asarray(arr)
        if not arr.flags.c_contiguous:
            # note: np.ascontiguousarray would promote 0-d arrays to 1-d,
            # losing the shape; only copy when actually needed
            arr = np.ascontiguousarray(arr)
        _pack_str(out, key)
        _pack_str(out, arr.dtype.str)
        out.append(struct.pack("<I", arr.ndim))
        out.append(struct.pack(f"<{arr.ndim}Q", *arr.shape) if arr.ndim else b"")
        raw = arr.tobytes()
        out.append(struct.pack("<Q", len(raw)))
        out.append(raw)
    return b"".join(out)


def packed_arrays_nbytes(arrays: dict[str, np.ndarray]) -> int:
    """Exact ``len(pack_arrays(arrays))`` without serializing anything.

    The packed size is a pure function of key names, dtypes, and shapes, so
    callers that only need the uncompressed byte count of a state dict (the
    round engine reports it every round for every client) can compute it
    analytically instead of materializing and discarding the buffer.
    """
    total = 4 + 4  # magic + entry count
    for key, arr in arrays.items():
        arr = np.asarray(arr)
        total += 4 + len(key.encode("utf-8"))          # key record
        total += 4 + len(arr.dtype.str.encode("utf-8"))  # dtype record
        total += 4 + 8 * arr.ndim                      # ndim + shape
        total += 8 + arr.nbytes                        # length + raw bytes
    return total


def unpack_arrays(data: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays`."""
    buf = memoryview(data)
    if bytes(buf[:4]) != _MAGIC_ARRAYS:
        raise ValueError("not a packed array dictionary (bad magic)")
    _require(buf, 4, 4, "entry count")
    (count,) = struct.unpack_from("<I", buf, 4)
    offset = 8
    result: dict[str, np.ndarray] = {}
    for _ in range(count):
        key, offset = _unpack_str(buf, offset, "array name")
        dtype_str, offset = _unpack_str(buf, offset, f"dtype of array {key!r}")
        try:
            dtype = np.dtype(dtype_str)
        except TypeError as exc:
            raise ValueError(f"corrupt dtype string {dtype_str!r} for array {key!r}") from exc
        _require(buf, offset, 4, f"ndim of array {key!r}")
        (ndim,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        if ndim > MAX_NDIM:
            raise ValueError(f"corrupt ndim {ndim} for array {key!r} (max {MAX_NDIM})")
        _require(buf, offset, 8 * ndim, f"shape of array {key!r}")
        shape = struct.unpack_from(f"<{ndim}Q", buf, offset) if ndim else ()
        offset += 8 * ndim
        _require(buf, offset, 8, f"byte length of array {key!r}")
        (length,) = struct.unpack_from("<Q", buf, offset)
        offset += 8
        expected = int(np.prod(shape, dtype=np.uint64)) * dtype.itemsize if ndim else dtype.itemsize
        if length != expected:
            raise ValueError(
                f"corrupt array record {key!r}: {length} payload bytes declared for "
                f"shape {tuple(shape)} of dtype {dtype} ({expected} expected)")
        _require(buf, offset, length, f"data of array {key!r}")
        raw = bytes(buf[offset : offset + length])
        offset += length
        result[key] = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    return result

"""Tests for the error-distribution analysis and DP accounting (Figure 10)."""

import numpy as np
import pytest

from repro.compressors import SZ2Compressor
from repro.privacy import (
    analyze_error_distribution,
    compression_errors,
    epsilon_for_laplace_noise,
    laplace_mechanism_scale,
)


class TestCompressionErrors:
    def test_errors_bounded_by_rel_bound(self, weight_like):
        errors = compression_errors(SZ2Compressor(error_bound=1e-2), weight_like)
        bound = 1e-2 * (weight_like.max() - weight_like.min())
        assert np.max(np.abs(errors)) <= bound * (1 + 1e-6) + 1e-9
        assert errors.shape == (weight_like.size,)

    def test_errors_shrink_with_bound(self, weight_like):
        wide = compression_errors(SZ2Compressor(error_bound=1e-1), weight_like)
        narrow = compression_errors(SZ2Compressor(error_bound=1e-3), weight_like)
        assert np.std(narrow) < np.std(wide)


class TestErrorDistribution:
    def test_true_laplace_identified(self):
        rng = np.random.default_rng(0)
        samples = rng.laplace(0.0, 0.01, size=50_000)
        fit = analyze_error_distribution(samples)
        assert fit.laplace_like
        assert fit.laplace_scale == pytest.approx(0.01, rel=0.1)
        assert fit.histogram_peaked

    def test_gaussian_not_flagged_laplace(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(0.0, 0.01, size=50_000)
        fit = analyze_error_distribution(samples)
        assert not fit.laplace_like
        assert abs(fit.excess_kurtosis) < 0.5

    def test_compression_error_is_peaked_like_laplace(self, weight_like):
        # the paper's Figure 10 observation: at the largest REL bound (0.5) the
        # compression error inherits the sharply-peaked weight distribution and
        # a Laplace model fits it better than a Gaussian
        errors = compression_errors(SZ2Compressor(error_bound=0.5), weight_like)
        fit = analyze_error_distribution(errors)
        assert fit.histogram_peaked
        assert fit.laplace_like

    def test_small_bound_errors_lose_laplace_shape(self, weight_like):
        # at tight bounds the quantization error tends toward uniform noise;
        # this is the documented boundary of the Figure 10 observation
        errors = compression_errors(SZ2Compressor(error_bound=1e-2), weight_like)
        fit = analyze_error_distribution(errors)
        assert fit.excess_kurtosis < 0.5

    def test_subsampling_large_inputs(self):
        rng = np.random.default_rng(2)
        fit = analyze_error_distribution(rng.laplace(0, 1, 500_000), max_samples=10_000)
        assert fit.n == 10_000

    def test_nonfinite_filtered(self):
        samples = np.array([0.1, -0.2, np.nan, np.inf, 0.05])
        fit = analyze_error_distribution(samples)
        assert fit.n == 3

    def test_empty_errors_raise(self):
        with pytest.raises(ValueError):
            analyze_error_distribution(np.array([np.nan]))

    def test_fit_fields_finite(self, weight_like):
        errors = compression_errors(SZ2Compressor(error_bound=1e-2), weight_like)
        fit = analyze_error_distribution(errors)
        for value in (fit.mean, fit.std, fit.laplace_loc, fit.laplace_scale,
                      fit.laplace_ks, fit.normal_ks, fit.excess_kurtosis):
            assert np.isfinite(value)


class TestDPAccounting:
    def test_scale_and_epsilon_inverse(self):
        scale = laplace_mechanism_scale(sensitivity=1.0, epsilon=0.5)
        assert scale == pytest.approx(2.0)
        assert epsilon_for_laplace_noise(1.0, scale) == pytest.approx(0.5)

    def test_more_noise_more_privacy(self):
        assert epsilon_for_laplace_noise(1.0, 10.0) < epsilon_for_laplace_noise(1.0, 0.1)

    @pytest.mark.parametrize("func", [laplace_mechanism_scale, epsilon_for_laplace_noise])
    def test_validation(self, func):
        with pytest.raises(ValueError):
            func(0.0, 1.0)
        with pytest.raises(ValueError):
            func(1.0, 0.0)

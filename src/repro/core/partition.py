"""State-dict partitioning (Algorithm 1, lines 2-8).

A tensor goes to the *lossy* partition when its name contains one of the
configured tokens (``"weight"`` by default) **and** it holds more elements than
the threshold; everything else — biases, BatchNorm statistics, small weights —
goes to the *lossless* partition.  Lossy-compressing the metadata destroys
model accuracy (Section V-C of the paper and the partitioning ablation
benchmark), which is exactly why the split exists.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FedSZConfig

__all__ = ["PartitionedState", "partition_state_dict", "lossy_fraction"]


@dataclass
class PartitionedState:
    """Result of partitioning a state dict."""

    lossy: "OrderedDict[str, np.ndarray]" = field(default_factory=OrderedDict)
    lossless: "OrderedDict[str, np.ndarray]" = field(default_factory=OrderedDict)

    @property
    def lossy_bytes(self) -> int:
        """Total byte size of the lossy partition."""
        return sum(int(v.nbytes) for v in self.lossy.values())

    @property
    def lossless_bytes(self) -> int:
        """Total byte size of the lossless partition."""
        return sum(int(v.nbytes) for v in self.lossless.values())

    @property
    def total_bytes(self) -> int:
        """Total byte size of the original state dict."""
        return self.lossy_bytes + self.lossless_bytes

    @property
    def lossy_fraction(self) -> float:
        """Fraction of bytes routed to the lossy compressor (Table III column)."""
        total = self.total_bytes
        return self.lossy_bytes / total if total else 0.0


def _is_lossy_candidate(name: str, array: np.ndarray, config: FedSZConfig) -> bool:
    if not np.issubdtype(np.asarray(array).dtype, np.floating):
        return False
    if array.size <= config.threshold:
        return False
    return any(token in name for token in config.lossy_name_tokens)


def partition_state_dict(state: dict[str, np.ndarray],
                         config: FedSZConfig | None = None) -> PartitionedState:
    """Split ``state`` into lossy and lossless partitions per Algorithm 1."""
    config = config or FedSZConfig()
    result = PartitionedState()
    for name, array in state.items():
        array = np.asarray(array)
        if _is_lossy_candidate(name, array, config):
            result.lossy[name] = array
        else:
            result.lossless[name] = array
    return result


def lossy_fraction(state: dict[str, np.ndarray], config: FedSZConfig | None = None) -> float:
    """Fraction of state-dict bytes that FedSZ would lossy-compress."""
    return partition_state_dict(state, config).lossy_fraction

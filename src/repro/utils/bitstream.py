"""Bit-level writer/reader used by the Huffman coder and the ZFP-like codec.

Both classes operate on whole NumPy ``uint8`` buffers so the hot paths stay
vectorized: bits are accumulated in Python integers only at the API boundary,
while bulk operations (``write_bits_array`` / ``read_bits_array``) pack and
unpack many fixed-width fields at once with :func:`numpy.packbits` /
:func:`numpy.unpackbits`.

:class:`StreamBuffer` is the byte-level counterpart for *incremental*
consumers: a growable assembly buffer that accepts chunks of a byte stream as
they arrive (off a socket, a simulated wire, or an incremental decompressor)
and hands out zero-copy ``memoryview`` windows over the bytes received so far.
It is the substrate the streaming Huffman consumer and the streaming FedSZ
pipeline decoders are built on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader", "StreamBuffer"]


class StreamBuffer:
    """Growable byte-assembly buffer for incremental stream consumers.

    ``feed`` appends arriving bytes (any bytes-like object; the data is copied
    into the assembly buffer exactly once), ``view`` returns a zero-copy
    ``memoryview`` window over bytes already received, and ``available`` is the
    running total.  Consumers typically keep a cursor of how far they have
    parsed and call :meth:`has` to decide whether the next field is complete.

    An optional ``expected`` total length makes over-feeding a hard error —
    a stream that delivers more bytes than its header declared is corrupt, and
    the error should surface at the byte that proves it, not at finish time.
    """

    def __init__(self, expected: int | None = None) -> None:
        if expected is not None and expected < 0:
            raise ValueError("expected length must be non-negative")
        self._data = bytearray()
        self._expected = expected

    @property
    def available(self) -> int:
        """Number of bytes received so far."""
        return len(self._data)

    @property
    def expected(self) -> int | None:
        """Declared total stream length, when known."""
        return self._expected

    def expect(self, total: int) -> None:
        """Declare the total stream length once it becomes known.

        Raises :class:`ValueError` if the bytes already received exceed it.
        """
        if total < 0:
            raise ValueError("expected length must be non-negative")
        self._expected = total
        if len(self._data) > total:
            raise ValueError(f"stream overrun: {len(self._data)} bytes received "
                             f"but only {total} were declared")

    def feed(self, data) -> int:
        """Append ``data`` (bytes-like) to the buffer; returns bytes appended."""
        view = memoryview(data)
        if self._expected is not None and \
                len(self._data) + view.nbytes > self._expected:
            raise ValueError(f"stream overrun: {len(self._data) + view.nbytes} "
                             f"bytes received but only {self._expected} were declared")
        self._data += view
        return view.nbytes

    def has(self, count: int, offset: int = 0) -> bool:
        """True when at least ``count`` bytes are available from ``offset``."""
        return len(self._data) - offset >= count

    def view(self, start: int = 0, stop: int | None = None) -> memoryview:
        """Zero-copy window over received bytes (``stop=None`` = everything)."""
        stop = len(self._data) if stop is None else stop
        if start < 0 or stop > len(self._data) or start > stop:
            raise ValueError(f"view [{start}:{stop}) outside the {len(self._data)} "
                             f"bytes received")
        return memoryview(self._data)[start:stop]

    @property
    def complete(self) -> bool:
        """True when the declared total has fully arrived."""
        return self._expected is not None and len(self._data) == self._expected


class BitWriter:
    """Accumulates bits most-significant-bit first into a byte buffer."""

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._pending_bits: list[int] = []

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._pending_bits.append(1 if bit else 0)

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (MSB first)."""
        if width < 0:
            raise ValueError("width must be non-negative")
        for shift in range(width - 1, -1, -1):
            self._pending_bits.append((value >> shift) & 1)

    def write_bitarray(self, bits: np.ndarray) -> None:
        """Append a 1-D array of 0/1 values."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        if self._pending_bits:
            self._flush_pending()
        self._chunks.append(bits)

    def write_bits_array(self, values: np.ndarray, width: int) -> None:
        """Append every element of ``values`` using a fixed ``width`` in bits."""
        values = np.asarray(values, dtype=np.uint64).ravel()
        if width == 0 or values.size == 0:
            return
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
        self.write_bitarray(bits.ravel())

    def _flush_pending(self) -> None:
        if self._pending_bits:
            self._chunks.append(np.asarray(self._pending_bits, dtype=np.uint8))
            self._pending_bits = []

    @property
    def nbits(self) -> int:
        """Number of bits written so far."""
        return sum(int(c.size) for c in self._chunks) + len(self._pending_bits)

    def getvalue(self) -> bytes:
        """Return the packed bytes (zero padded to a byte boundary)."""
        self._flush_pending()
        if not self._chunks:
            return b""
        allbits = np.concatenate(self._chunks) if len(self._chunks) > 1 else self._chunks[0]
        self._chunks = [allbits]
        return np.packbits(allbits).tobytes()


class BitReader:
    """Reads bits MSB-first from a byte buffer produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits (including any zero padding)."""
        return int(self._bits.size - self._pos)

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` past the end of the buffer."""
        if self._pos >= self._bits.size:
            raise EOFError("bitstream exhausted")
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""
        if width == 0:
            return 0
        if self._pos + width > self._bits.size:
            raise EOFError("bitstream exhausted")
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        value = 0
        for b in chunk:
            value = (value << 1) | int(b)
        return value

    def read_bits_array(self, count: int, width: int) -> np.ndarray:
        """Read ``count`` fixed-width unsigned fields as a ``uint64`` array."""
        if width == 0 or count == 0:
            return np.zeros(count, dtype=np.uint64)
        total = count * width
        if self._pos + total > self._bits.size:
            raise EOFError("bitstream exhausted")
        chunk = self._bits[self._pos : self._pos + total].reshape(count, width)
        self._pos += total
        weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
        return (chunk.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)

    def read_bitarray(self, count: int) -> np.ndarray:
        """Read ``count`` raw bits as a ``uint8`` array."""
        if self._pos + count > self._bits.size:
            raise EOFError("bitstream exhausted")
        chunk = self._bits[self._pos : self._pos + count]
        self._pos += count
        return chunk.copy()

"""Wall-clock timing helpers and human-readable formatting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "format_bytes", "format_seconds"]


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single :class:`Timer` can be entered multiple times; ``elapsed`` is the
    total across entries and ``laps`` records each individual interval, which
    the benchmark harness uses to report per-round breakdowns.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:
            return
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    def reset(self) -> None:
        """Clear the accumulated time and lap history."""
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    @property
    def mean_lap(self) -> float:
        """Mean duration of the recorded laps (0.0 when no laps exist)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0


def format_bytes(num_bytes: float) -> str:
    """Render a byte count as a short human-readable string (e.g. ``'1.5 MB'``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.2f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.2f} TB"


def format_seconds(seconds: float) -> str:
    """Render a duration with a unit that keeps 2-4 significant digits."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.2f} min"

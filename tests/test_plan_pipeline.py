"""Plan-driven per-tensor compression: policies, v4 wire format, parallelism.

Covers the format-4 pipeline refactor end to end:

* :class:`TensorPlan` / :class:`CompressionPlan` validation and the manifest
  plan-summary wire form (roundtrip, truncation at every byte, field fuzz),
* the policy registry (``uniform`` / ``size-adaptive`` / ``mixed-codec``,
  per-name overrides, third-party registration),
* hypothesis roundtrip properties for mixed-codec plans over every codec
  pair x dtype x bound mode, with the error bound verified per tensor,
* bit-identical bitstreams and reconstructions at ``pipeline_workers`` 1 vs 4,
* manifest truncation + bit-flip fuzz for the v4 bitstream,
* base lossy-payload header validation (truncation at every byte, unknown
  dtype codes, absurd ndim, non-finite bounds) for every registered codec,
* per-client ``FedSZReport`` collection in ``FederatedSimulation.run_round``.
"""

import struct
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.base import ErrorBoundMode
from repro.compressors.registry import available_lossy, get_lossy
from repro.core import (
    AdaptiveBoundPolicy,
    CompressionPlan,
    FedSZCompressor,
    FedSZConfig,
    MixedCodecPolicy,
    SizeAdaptivePolicy,
    TensorPlan,
    UniformPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.core.partition import partition_state_dict
from repro.core.plan import pack_plan, unpack_plan
from repro.data import make_dataset, train_test_split
from repro.fl import FederatedSimulation, FedSZUpdateCodec, RawUpdateCodec
from repro.nn import build_model
from repro.utils.serialization import pack_bytes_dict, unpack_bytes_dict

CODECS = ("sz2", "sz3", "szx", "zfp")


# ---------------------------------------------------------------------------
# TensorPlan / CompressionPlan
# ---------------------------------------------------------------------------

class TestTensorPlan:
    def test_defaults_and_mode_normalization(self):
        plan = TensorPlan("w", "sz2", 1e-2, "abs")
        assert plan.mode is ErrorBoundMode.ABS
        assert plan.options == {}

    @pytest.mark.parametrize("kwargs", [
        dict(name="", codec="sz2", error_bound=1e-2),
        dict(name="w", codec="", error_bound=1e-2),
        dict(name="w", codec="sz2", error_bound=0.0),
        dict(name="w", codec="sz2", error_bound=-1e-3),
        dict(name="w", codec="sz2", error_bound=float("nan")),
        dict(name="w", codec="sz2", error_bound=float("inf")),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TensorPlan(**kwargs)

    def test_evolve_revalidates(self):
        plan = TensorPlan("w", "sz2", 1e-2)
        assert plan.evolve(codec="szx").codec == "szx"
        with pytest.raises(ValueError):
            plan.evolve(error_bound=-1.0)

    def test_plan_key_must_match_entry_name(self):
        with pytest.raises(ValueError, match="keyed"):
            CompressionPlan({"other": TensorPlan("w", "sz2", 1e-2)})

    def test_plan_accessors(self):
        plan = CompressionPlan({
            "a": TensorPlan("a", "szx", 1e-2),
            "b": TensorPlan("b", "sz2", 1e-3),
        })
        assert plan.tensor_names == ["a", "b"]
        assert plan.codecs == ["sz2", "szx"]
        assert plan.bounds() == {"a": 1e-2, "b": 1e-3}
        assert "a" in plan and "z" not in plan
        assert len(plan) == 2


class TestPlanWireFormat:
    def _sample_plan(self):
        return CompressionPlan({
            "conv.weight": TensorPlan("conv.weight", "sz2", 1e-2, ErrorBoundMode.REL),
            "tête.weight": TensorPlan("tête.weight", "szx", 5e-4, ErrorBoundMode.ABS,
                                      {"block_size": 64}),
        })

    def test_roundtrip(self):
        plan = self._sample_plan()
        buf = pack_plan(plan)
        parsed, offset = unpack_plan(buf)
        assert offset == len(buf)
        assert parsed == plan
        assert parsed["tête.weight"].options == {"block_size": 64}

    def test_empty_plan_roundtrip(self):
        buf = pack_plan(CompressionPlan())
        parsed, offset = unpack_plan(buf)
        assert len(parsed) == 0 and offset == len(buf) == 4

    def test_truncation_at_every_byte_raises_valueerror(self):
        buf = pack_plan(self._sample_plan())
        for cut in range(len(buf)):
            with pytest.raises(ValueError):
                unpack_plan(buf[:cut])

    def test_unknown_mode_code_rejected(self):
        plan = CompressionPlan({"w": TensorPlan("w", "sz2", 1e-2)})
        buf = bytearray(pack_plan(plan))
        # mode byte sits after count(4) + name len(2)+1 + codec len(1)+3 + bound(8)
        mode_at = 4 + 2 + 1 + 1 + 3 + 8
        assert buf[mode_at] == 1  # REL
        buf[mode_at] = 7
        with pytest.raises(ValueError, match="mode"):
            unpack_plan(bytes(buf))

    def test_duplicate_entry_rejected(self):
        plan = CompressionPlan({"w": TensorPlan("w", "sz2", 1e-2)})
        one = pack_plan(plan)[4:]
        buf = struct.pack("<I", 2) + one + one
        with pytest.raises(ValueError, match="duplicate"):
            unpack_plan(buf)

    def test_non_object_options_rejected(self):
        options = b"[1,2]"
        entry = (struct.pack("<H", 1) + b"w" + struct.pack("<B", 3) + b"sz2"
                 + struct.pack("<dB", 1e-2, 1)
                 + struct.pack("<H", len(options)) + options)
        with pytest.raises(ValueError, match="JSON object"):
            unpack_plan(struct.pack("<I", 1) + entry)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

class TestPolicyRegistry:
    def test_builtins_registered(self):
        assert {"uniform", "size-adaptive", "mixed-codec"} <= set(available_policies())

    def test_unknown_policy_raises_valueerror(self):
        with pytest.raises(ValueError, match="unknown plan policy"):
            get_policy("round-robin")

    def test_register_and_overwrite_rules(self):
        class _Custom(UniformPolicy):
            name = "custom-test-policy"

        register_policy("custom-test-policy", _Custom)
        try:
            assert isinstance(get_policy("custom-test-policy"), _Custom)
            with pytest.raises(ValueError, match="already registered"):
                register_policy("custom-test-policy", _Custom)
            register_policy("custom-test-policy", _Custom, overwrite=True)
        finally:
            from repro.core.plan import _POLICIES
            _POLICIES.pop("custom-test-policy", None)

    def test_override_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown plan fields"):
            UniformPolicy(overrides={"w": {"codex": "sz3"}})

    def test_override_unknown_codec_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown lossy compressor"):
            UniformPolicy(overrides={"w": {"codec": "fpzip"}})

    def test_override_naming_absent_tensor_rejected(self):
        # a typo'd override name must not silently ship the tensor on the
        # default plan
        policy = UniformPolicy(overrides={"clasifier.weight": {"error_bound": 1e-5}})
        tensors = {"classifier.weight": np.zeros(64, dtype=np.float32)}
        with pytest.raises(ValueError, match="absent from the lossy partition"):
            policy.build_plan(tensors, FedSZConfig())

    def test_non_json_options_rejected_at_plan_construction(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            TensorPlan("w", "sz2", 1e-2, options={"cutoff": np.int64(5)})


class TestPolicies:
    def _tensors(self):
        rng = np.random.default_rng(3)
        return {
            "small.weight": rng.normal(size=128).astype(np.float32),
            "large.weight": rng.normal(size=4096).astype(np.float32),
        }

    def test_uniform_matches_config(self):
        config = FedSZConfig(lossy_compressor="sz3", error_bound=2e-3,
                             error_mode=ErrorBoundMode.ABS)
        plan = UniformPolicy().build_plan(self._tensors(), config)
        for entry in plan:
            assert entry.codec == "sz3"
            assert entry.error_bound == pytest.approx(2e-3)
            assert entry.mode is ErrorBoundMode.ABS

    def test_size_adaptive_matches_adaptive_bound_policy(self):
        tensors = self._tensors()
        config = FedSZConfig(error_bound=1e-1)
        plan = SizeAdaptivePolicy(min_bound=1e-3).build_plan(tensors, config)
        expected = AdaptiveBoundPolicy(base_bound=1e-1, min_bound=1e-3).bounds_for(tensors)
        assert plan.bounds() == expected
        assert plan["small.weight"].error_bound < plan["large.weight"].error_bound

    def test_mixed_codec_cutoff(self):
        config = FedSZConfig(lossy_compressor="sz2")
        plan = MixedCodecPolicy(small_codec="szx", size_cutoff=1024) \
            .build_plan(self._tensors(), config)
        assert plan["small.weight"].codec == "szx"
        assert plan["large.weight"].codec == "sz2"

    def test_mixed_codec_tier_bounds(self):
        config = FedSZConfig(error_bound=1e-2)
        plan = MixedCodecPolicy(size_cutoff=1024, small_bound=1e-3) \
            .build_plan(self._tensors(), config)
        assert plan["small.weight"].error_bound == pytest.approx(1e-3)
        assert plan["large.weight"].error_bound == pytest.approx(1e-2)

    def test_policy_numeric_knobs_validated_at_construction(self):
        with pytest.raises(ValueError, match="small_bound"):
            MixedCodecPolicy(small_bound=-1.0)
        with pytest.raises(ValueError, match="large_bound"):
            MixedCodecPolicy(large_bound=float("nan"))
        with pytest.raises(ValueError, match="min_bound"):
            SizeAdaptivePolicy(min_bound=0.0)

    def test_non_ascii_codec_name_is_valueerror(self):
        plan = CompressionPlan({"w": TensorPlan("w", "codéc", 1e-2)})
        with pytest.raises(ValueError, match="ASCII"):
            pack_plan(plan)

    def test_mixed_codec_unknown_tier_codec_rejected_at_construction(self):
        # a typo must fail when the policy is built, not midway through a
        # compress (or silently, when no tensor falls below the cutoff)
        with pytest.raises(ValueError, match="unknown lossy compressor"):
            MixedCodecPolicy(small_codec="nope")
        with pytest.raises(ValueError, match="unknown lossy compressor"):
            MixedCodecPolicy(large_codec="nope")
        with pytest.raises(ValueError, match="unknown lossy compressor"):
            FedSZCompressor(FedSZConfig(policy="mixed-codec",
                                        policy_options={"small_codec": "nope"}))

    def test_per_name_overrides_apply_on_every_policy(self):
        overrides = {"large.weight": {"codec": "zfp", "error_bound": 7e-3}}
        config = FedSZConfig()
        for policy in (UniformPolicy(overrides=overrides),
                       SizeAdaptivePolicy(overrides=overrides),
                       MixedCodecPolicy(overrides=overrides)):
            plan = policy.build_plan(self._tensors(), config)
            assert plan["large.weight"].codec == "zfp"
            assert plan["large.weight"].error_bound == pytest.approx(7e-3)
            assert plan["small.weight"].codec != "zfp"


# ---------------------------------------------------------------------------
# Mixed-codec roundtrips (the acceptance-criteria scenario + hypothesis)
# ---------------------------------------------------------------------------

def _abs_tolerance(entry: TensorPlan, original: np.ndarray) -> float:
    """The absolute per-element tolerance a plan entry promises for a tensor."""
    if entry.mode is ErrorBoundMode.ABS:
        return entry.error_bound
    original = original.astype(np.float64)
    return entry.error_bound * float(original.max() - original.min())


def _assert_bounds_hold(plan: CompressionPlan, state: dict, recon: dict) -> None:
    for entry in plan:
        original = state[entry.name].astype(np.float64)
        err = float(np.max(np.abs(recon[entry.name].astype(np.float64) - original)))
        tol = _abs_tolerance(entry, state[entry.name])
        assert err <= tol * (1 + 1e-6) + 1e-9, \
            f"{entry.name} ({entry.codec}): error {err} above bound {tol}"


class TestMixedCodecRoundtrip:
    def test_szx_small_sz2_large_one_bitstream(self):
        """The ISSUE acceptance scenario: SZx small + SZ2 large in one v4 stream."""
        rng = np.random.default_rng(11)
        state = {
            "head.weight": rng.normal(0, 0.1, size=512).astype(np.float32),
            "body.weight": rng.normal(0, 0.1, size=(64, 512)).astype(np.float32),
            "head.bias": rng.normal(size=8).astype(np.float32),
        }
        config = FedSZConfig(lossy_compressor="sz2", error_bound=1e-2, threshold=64,
                             policy="mixed-codec",
                             policy_options={"small_codec": "szx", "size_cutoff": 1024})
        fedsz = FedSZCompressor(config)
        payload, report = fedsz.compress_with_report(state)
        assert fedsz.last_plan["head.weight"].codec == "szx"
        assert fedsz.last_plan["body.weight"].codec == "sz2"
        assert report.ratio > 1.0

        # a *fresh* decoder with default config needs no out-of-band state
        fresh = FedSZCompressor()
        recon = fresh.decompress_state_dict(payload)
        assert set(recon) == set(state)
        np.testing.assert_array_equal(recon["head.bias"], state["head.bias"])
        _assert_bounds_hold(fedsz.last_plan, state, recon)

    def test_codec_tag_disagreeing_with_plan_rejected(self):
        rng = np.random.default_rng(5)
        state = {"w.weight": rng.normal(size=256).astype(np.float32)}
        fedsz = FedSZCompressor(FedSZConfig(threshold=16))
        stream = fedsz.compress_state_dict(state)
        entries = unpack_bytes_dict(stream)
        payload = bytearray(entries["lossy::w.weight"])
        # retag the payload as szx while the manifest plan says sz2
        assert payload[1:4] == b"sz2"
        payload[1:4] = b"szx"
        entries["lossy::w.weight"] = bytes(payload)
        with pytest.raises(ValueError, match="tagged"):
            fedsz.decompress_state_dict(pack_bytes_dict(entries))

    def test_unknown_codec_tag_rejected(self):
        rng = np.random.default_rng(5)
        state = {"w.weight": rng.normal(size=256).astype(np.float32)}
        fedsz = FedSZCompressor(FedSZConfig(threshold=16))
        stream = fedsz.compress_state_dict(state)
        entries = unpack_bytes_dict(stream)
        # rewrite both the plan and the payload tag to a codec that is not
        # registered: self-consistent stream, unsupported codec
        manifest = bytearray(entries["__manifest__"])
        manifest = manifest.replace(b"sz2", b"xy9")
        entries["__manifest__"] = bytes(manifest)
        entries["lossy::w.weight"] = entries["lossy::w.weight"].replace(b"sz2", b"xy9", 1)
        with pytest.raises(ValueError, match="unknown codec"):
            fedsz.decompress_state_dict(pack_bytes_dict(entries))


@pytest.mark.parametrize("small_codec", CODECS)
@pytest.mark.parametrize("large_codec", CODECS)
class TestMixedCodecPairProperties:
    """Every codec pair, with hypothesis driving dtype, bound mode, and data."""

    @given(dtype=st.sampled_from([np.float32, np.float64]),
           mode=st.sampled_from([ErrorBoundMode.ABS, ErrorBoundMode.REL]),
           seed=st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=4, deadline=None)
    def test_pair_roundtrips_with_per_tensor_bounds(self, small_codec, large_codec,
                                                    dtype, mode, seed):
        rng = np.random.default_rng(seed)
        state = {
            "tiny.weight": (rng.normal(0, 0.2, size=96) + rng.normal()).astype(dtype),
            "big.weight": rng.normal(0, 0.2, size=(24, 64)).astype(dtype),
            "norm.bias": rng.normal(size=6).astype(dtype),
        }
        bound = 5e-3 if mode is ErrorBoundMode.ABS else 1e-2
        config = FedSZConfig(lossy_compressor=large_codec, error_bound=bound,
                             error_mode=mode, threshold=64, policy="mixed-codec",
                             policy_options={"small_codec": small_codec,
                                             "size_cutoff": 512})
        fedsz = FedSZCompressor(config)
        payload, _ = fedsz.compress_with_report(state)
        plan = fedsz.last_plan
        assert plan["tiny.weight"].codec == small_codec
        assert plan["big.weight"].codec == large_codec

        recon = FedSZCompressor().decompress_state_dict(payload)
        assert set(recon) == set(state)
        for key in state:
            assert recon[key].dtype == state[key].dtype
            assert recon[key].shape == state[key].shape
        np.testing.assert_array_equal(recon["norm.bias"], state["norm.bias"])
        _assert_bounds_hold(plan, state, recon)


# ---------------------------------------------------------------------------
# Parallel pipeline determinism
# ---------------------------------------------------------------------------

class TestPipelineWorkers:
    @pytest.fixture(autouse=True)
    def _force_threaded_path(self, monkeypatch):
        """Exercise the real thread pool even on single-core test hosts (the
        pipeline clamps its fan-out to the cores actually available)."""
        import repro.core.pipeline as pipeline_module

        monkeypatch.setattr(pipeline_module.os, "cpu_count", lambda: 8)

    @pytest.mark.parametrize("policy", ["uniform", "mixed-codec"])
    def test_workers_bit_identical(self, small_state, policy):
        sequential = FedSZCompressor(FedSZConfig(policy=policy, pipeline_workers=1))
        threaded = FedSZCompressor(FedSZConfig(policy=policy, pipeline_workers=4))
        assert threaded._pipeline_workers() == 4
        payload = sequential.compress_state_dict(small_state)
        assert payload == threaded.compress_state_dict(small_state)
        recon_seq = sequential.decompress_state_dict(payload)
        recon_par = threaded.decompress_state_dict(payload)
        assert list(recon_seq) == list(recon_par)
        for key in recon_seq:
            np.testing.assert_array_equal(recon_seq[key], recon_par[key])

    def test_workers_clamped_to_host_cores(self, monkeypatch):
        import repro.core.pipeline as pipeline_module

        monkeypatch.setattr(pipeline_module.os, "cpu_count", lambda: 2)
        fedsz = FedSZCompressor(FedSZConfig(pipeline_workers=16))
        assert fedsz._pipeline_workers() == 2

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            FedSZConfig(pipeline_workers=0)

    def test_policy_reordering_or_dropping_tensors_fails_at_compress(self, small_state):
        class _Misbehaving(UniformPolicy):
            def build_plan(self, tensors, config, delta=False):
                plan = super().build_plan(tensors, config, delta=delta)
                entries = OrderedDict(sorted(plan.entries.items(), reverse=True))
                return CompressionPlan(entries)

        fedsz = FedSZCompressor(FedSZConfig(threshold=64), policy=_Misbehaving())
        with pytest.raises(ValueError, match="partition order"):
            fedsz.compress_state_dict(small_state)

    def test_per_call_reports_are_fresh_objects(self, small_state):
        fedsz = FedSZCompressor(FedSZConfig(threshold=256))
        _, first = fedsz.compress_with_report(small_state)
        _, second = fedsz.compress_with_report(small_state)
        assert first is not second
        assert second.compressed_bytes == first.compressed_bytes
        assert fedsz.last_report is second


# ---------------------------------------------------------------------------
# v4 manifest fuzz
# ---------------------------------------------------------------------------

@pytest.fixture
def v4_stream():
    rng = np.random.default_rng(23)
    state = {
        "conv.weight": rng.normal(size=(8, 16)).astype(np.float32),
        "conv.bias": rng.normal(size=8).astype(np.float32),
    }
    fedsz = FedSZCompressor(FedSZConfig(threshold=16, policy="mixed-codec",
                                        policy_options={"size_cutoff": 4096}))
    stream = fedsz.compress_state_dict(state)
    return fedsz, state, stream


class TestV4ManifestFuzz:
    def test_manifest_truncation_at_every_byte(self, v4_stream):
        fedsz, _, stream = v4_stream
        entries = unpack_bytes_dict(stream)
        manifest = entries["__manifest__"]
        for cut in range(len(manifest)):
            mutated = dict(entries)
            mutated["__manifest__"] = manifest[:cut]
            with pytest.raises(ValueError):
                fedsz.decompress_state_dict(pack_bytes_dict(mutated))

    def test_manifest_bit_flips_never_corrupt_silently(self, v4_stream):
        """Any manifest bit flip either raises ValueError or leaves the decode
        identical (flips confined to advisory plan metadata the payloads
        already self-describe)."""
        fedsz, state, stream = v4_stream
        clean = fedsz.decompress_state_dict(stream)
        entries = unpack_bytes_dict(stream)
        manifest = entries["__manifest__"]
        for i in range(len(manifest)):
            for bit in (0x01, 0x80):
                mutated = bytearray(manifest)
                mutated[i] ^= bit
                candidate = dict(entries)
                candidate["__manifest__"] = bytes(mutated)
                try:
                    recon = fedsz.decompress_state_dict(pack_bytes_dict(candidate))
                except ValueError:
                    continue
                assert set(recon) == set(clean)
                for key in clean:
                    np.testing.assert_array_equal(recon[key], clean[key])

    def test_plan_trailing_garbage_rejected(self, v4_stream):
        fedsz, _, stream = v4_stream
        entries = unpack_bytes_dict(stream)
        entries["__manifest__"] += b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            fedsz.decompress_state_dict(pack_bytes_dict(entries))

    def test_plan_payload_name_mismatch_rejected(self, v4_stream):
        fedsz, _, stream = v4_stream
        entries = unpack_bytes_dict(stream)
        payload = entries.pop("lossy::conv.weight")
        entries["lossy::conv.wEight"] = payload
        with pytest.raises(ValueError):
            fedsz.decompress_state_dict(pack_bytes_dict(entries))


# ---------------------------------------------------------------------------
# Base lossy-payload header validation (every registered codec)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("codec", CODECS)
class TestLossyPayloadHeaderValidation:
    def _payload(self, codec):
        rng = np.random.default_rng(29)
        comp = get_lossy(codec, error_bound=1e-2)
        return comp, comp.compress(rng.normal(size=(5, 11)).astype(np.float32))

    def test_truncation_at_every_byte_raises_valueerror(self, codec):
        comp, payload = self._payload(codec)
        for cut in range(len(payload)):
            with pytest.raises(ValueError):
                comp.decompress(payload[:cut])

    def test_unknown_dtype_code_rejected(self, codec):
        comp, payload = self._payload(codec)
        with pytest.raises(ValueError, match="dtype code"):
            comp.decompress(b"\x07" + payload[1:])

    def test_absurd_ndim_rejected(self, codec):
        comp, payload = self._payload(codec)
        with pytest.raises(ValueError, match="ndim"):
            comp.decompress(payload[:1] + b"\xff" + payload[2:])

    def test_non_finite_bound_rejected(self, codec):
        comp, payload = self._payload(codec)
        mutated = bytearray(payload)
        bound_at = 2 + 8 * 2  # dtype + ndim + two u64 shape fields
        mutated[bound_at:bound_at + 8] = struct.pack("<d", float("nan"))
        with pytest.raises(ValueError, match="bound"):
            comp.decompress(bytes(mutated))

    def test_implausible_element_count_rejected(self, codec):
        comp, payload = self._payload(codec)
        mutated = bytearray(payload)
        mutated[2:18] = struct.pack("<QQ", 2 ** 40, 2 ** 40)
        with pytest.raises(ValueError, match="implausible"):
            comp.decompress(bytes(mutated))


# ---------------------------------------------------------------------------
# Per-client reports in the round engine
# ---------------------------------------------------------------------------

class TestRoundEngineClientReports:
    def _simulation(self, codec, workers=1, n_clients=3):
        dataset = make_dataset("cifar10", n_samples=120, image_size=8, seed=2)
        train, test = train_test_split(dataset, test_fraction=0.25, seed=3)

        def factory():
            return build_model("mlp", num_classes=10, image_size=8, seed=0)

        return FederatedSimulation(factory, train, test, n_clients=n_clients,
                                   codec=codec, seed=4, max_workers=workers)

    def test_fedsz_reports_cover_every_participant(self):
        sim = self._simulation(FedSZUpdateCodec(FedSZConfig(error_bound=1e-2)))
        record = sim.run_round(0)
        assert sorted(record.client_reports) == record.participants
        for report in record.client_reports.values():
            assert report.compressed_bytes > 0
            assert report.ratio > 1.0
            assert report.compress_seconds > 0

    def test_parallel_round_reports_are_per_client(self):
        """The old single-slot footgun: at 4 workers every client still gets
        its own accurate report."""
        sim = self._simulation(FedSZUpdateCodec(FedSZConfig(error_bound=1e-2)),
                               workers=4)
        record = sim.run_round(0)
        assert sorted(record.client_reports) == record.participants
        sizes = {cid: r.compressed_bytes for cid, r in record.client_reports.items()}
        assert record.transmitted_bytes == sum(sizes.values())

    def test_uncompressed_codec_collects_no_reports(self):
        record = self._simulation(RawUpdateCodec()).run_round(0)
        assert record.client_reports == {}


# ---------------------------------------------------------------------------
# The adaptive wrapper is now plan-driven
# ---------------------------------------------------------------------------

class TestAdaptiveIsPlanDriven:
    def test_dispatching_hack_is_gone(self):
        import repro.core.adaptive as adaptive

        assert not hasattr(adaptive, "_Dispatching")
        source = open(adaptive.__file__).read()
        assert "_Dispatching" not in source

    def test_adaptive_bounds_unchanged_from_policy_math(self, small_state):
        from repro.core import AdaptiveFedSZCompressor

        config = FedSZConfig(error_bound=1e-1, threshold=64)
        adaptive = AdaptiveFedSZCompressor(config)
        adaptive.compress_state_dict(small_state)
        lossy = partition_state_dict(small_state, config).lossy
        expected = AdaptiveBoundPolicy(base_bound=1e-1).bounds_for(dict(lossy))
        assert adaptive.last_bounds == expected

"""SZ3-style error-bounded lossy compressor (interpolation prediction).

SZ3 (Liang et al., 2023; Zhao et al., 2021) replaces SZ2's block predictors
with dynamic multi-level spline interpolation: a coarse set of anchor points is
stored, and each refinement level predicts the new midpoints by interpolating
the already-reconstructed coarser level, quantizing the interpolation error
against the bound.  No regression coefficients need to be stored, which is why
SZ3 typically edges out SZ2 at larger error bounds (Section II-A of the paper).

This reproduction implements the 1-D linear-interpolation variant level by
level (each level is a single vectorized pass that reads only reconstructed
values), followed by the same Huffman + lossless finishing stages as SZ2.

Payload body layout::

    u64   element count
    u32   quantizer radius
    u8    anchor dtype (0 = float32, 1 = float64)
    u64   anchor count, anchor values
    u64   Huffman stream length, Huffman-coded quantization codes (level order)
    u64   outlier count, f64[] verbatim outliers (level order)

wrapped in the configured lossless backend.

Anchors are stored verbatim and double as their own reconstruction, so their
storage dtype must honour the error bound: float32 is used whenever the cast
error stays within the bound (always true for float32 inputs, keeping those
bitstreams compact), otherwise the anchors are kept as float64.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import ErrorBound, ErrorBoundMode, LossyCompressor
from repro.compressors.codebook import entropy_encode
from repro.compressors.huffman import DEFAULT_CHUNK_SYMBOLS, HuffmanCoder
from repro.compressors.lossless import LosslessCodec, get_lossless
from repro.compressors.predictors import InterpolationPredictor
from repro.compressors.quantizer import LinearQuantizer
from repro.compressors.streaming import SZStreamDecoder, SZStreamEncoder
from repro.utils.bitstream import StreamBuffer

__all__ = ["SZ3Compressor"]


class SZ3Compressor(LossyCompressor):
    """Multi-level interpolation-prediction compressor (SZ3 style)."""

    name = "sz3"

    def __init__(self, error_bound: ErrorBound | float = 1e-2,
                 mode: ErrorBoundMode | str = ErrorBoundMode.REL,
                 quantizer_radius: int = 32768,
                 lossless_backend: str | LosslessCodec = "zlib",
                 entropy_chunk: int = DEFAULT_CHUNK_SYMBOLS,
                 entropy_workers: int | None = 1,
                 entropy_backend: str = "thread") -> None:
        super().__init__(error_bound, mode)
        self.quantizer = LinearQuantizer(quantizer_radius)
        # entropy_chunk caps the symbols per Huffman chunk; entropy_workers=1
        # is the sequential reference decoder, >1 the banded vectorized one on
        # the named execution backend (serial / thread / process).
        self.huffman = HuffmanCoder(chunk_size=entropy_chunk, max_workers=entropy_workers,
                                    backend=entropy_backend)
        if isinstance(lossless_backend, LosslessCodec):
            self.lossless = lossless_backend
        else:
            self.lossless = get_lossless(lossless_backend, level=1) if lossless_backend == "zlib" \
                else get_lossless(lossless_backend)

    # ------------------------------------------------------------------
    def _compress_float1d(self, data: np.ndarray, abs_bound: float) -> bytes:
        prefix, codes, suffix = self._body_parts(data, abs_bound)
        if codes is None:
            return self.lossless.compress(b"".join(prefix + suffix))
        huff = entropy_encode(self.huffman, codes, self._codebook)
        body = b"".join(prefix) + struct.pack("<Q", len(huff)) + huff + b"".join(suffix)
        return self.lossless.compress(body)

    def _body_parts(self, data: np.ndarray, abs_bound: float
                    ) -> "tuple[list[bytes], np.ndarray | None, list[bytes]]":
        """Split the plaintext body into (pre-Huffman pieces, quantization
        codes, post-Huffman pieces).

        Same contract as :meth:`SZ2Compressor._body_parts`: shared by the
        batch path and the streaming :class:`SZStreamEncoder`, with ``codes
        is None`` marking the empty-array escape.
        """
        n = data.size
        if n == 0:
            return [struct.pack("<QIB", 0, self.quantizer.radius, 0)], None, []

        predictor = InterpolationPredictor(n)
        anchors_idx = predictor.anchor_indices()
        exact = data[anchors_idx]
        with np.errstate(over="ignore"):
            as_f32 = exact.astype(np.float32)
        f32_ok = np.all(np.isfinite(as_f32)) and \
            float(np.max(np.abs(as_f32.astype(np.float64) - exact))) <= abs_bound
        anchors = as_f32 if f32_ok else exact.astype(np.float64)

        # The decoder only sees the stored anchors; reconstruct from the same
        # values here so both sides run identical interpolation arithmetic.
        reconstructed = np.zeros(n, dtype=np.float64)
        reconstructed[anchors_idx] = anchors.astype(np.float64)

        code_chunks: list[np.ndarray] = []
        outlier_chunks: list[np.ndarray] = []
        for new_idx, left_idx, right_idx in predictor.levels():
            predictions = InterpolationPredictor.predict(reconstructed, new_idx, left_idx, right_idx)
            quant = self.quantizer.quantize(data[new_idx], predictions, abs_bound)
            reconstructed[new_idx] = quant.reconstructed
            code_chunks.append(quant.codes)
            outlier_chunks.append(quant.outliers)

        codes = np.concatenate(code_chunks) if code_chunks else np.zeros(0, dtype=np.int64)
        outliers = np.concatenate(outlier_chunks) if outlier_chunks else np.zeros(0, dtype=np.float64)

        prefix = [struct.pack("<QIB", n, self.quantizer.radius, 0 if f32_ok else 1),
                  struct.pack("<Q", anchors.size) + anchors.tobytes()]
        suffix = [LinearQuantizer.pack_outliers(outliers)]
        return prefix, codes, suffix

    # ------------------------------------------------------------------
    def _decompress_float1d(self, body: bytes, count: int, abs_bound: float,
                            dtype: np.dtype) -> np.ndarray:
        return self._decode_plain_body(self.lossless.decompress(body), count,
                                       abs_bound, dtype)

    def stream_decoder(self) -> SZStreamDecoder:
        """Incremental decoder that overlaps the Huffman stage with arrival."""
        return SZStreamDecoder(self)

    def stream_encoder(self) -> SZStreamEncoder:
        """Incremental encoder that emits the body as the Huffman stage codes."""
        return SZStreamEncoder(self)

    def _huffman_span(self, plain: "StreamBuffer") -> "tuple[int, int] | None":
        """Locate the embedded Huffman stream in a plaintext body prefix.

        Same contract as :meth:`SZ2Compressor._huffman_span`: ``(start,
        length)`` once the pre-Huffman fields (anchor block included) have
        arrived, ``None`` while more bytes are needed, length 0 for the
        empty-array escape.
        """
        fixed = struct.calcsize("<QIB")
        if not plain.has(fixed):
            return None
        n, _, anchor_code = struct.unpack("<QIB", plain.view(0, fixed))
        if n == 0:
            return fixed, 0
        itemsize = 8 if anchor_code else 4
        offset = fixed
        if not plain.has(8, offset):
            return None
        (anchor_count,) = struct.unpack("<Q", plain.view(offset, offset + 8))
        offset += 8 + itemsize * anchor_count
        if not plain.has(8, offset):
            return None
        (huff_len,) = struct.unpack("<Q", plain.view(offset, offset + 8))
        return offset + 8, huff_len

    def _decode_plain_body(self, body: bytes, count: int, abs_bound: float,
                           dtype: np.dtype,
                           codes: "np.ndarray | None" = None) -> np.ndarray:
        """Reconstruct from the decompressed body.

        ``codes`` carries pre-decoded Huffman symbols from the streaming
        consumer; ``None`` (the batch path) decodes them here.  Both sources
        run the same kernels, so the output is bit-identical either way.
        """
        n, radius, anchor_code = struct.unpack_from("<QIB", body, 0)
        offset = struct.calcsize("<QIB")
        if n == 0:
            return np.zeros(count, dtype=np.float64)
        anchor_dtype = np.dtype(np.float64) if anchor_code else np.dtype(np.float32)
        (anchor_count,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        anchors = np.frombuffer(body, dtype=anchor_dtype, count=anchor_count, offset=offset)
        offset += anchor_dtype.itemsize * anchor_count
        (huff_len,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        if codes is None:
            codes = self.huffman.decode(body[offset : offset + huff_len])
        offset += huff_len
        outliers, offset = LinearQuantizer.unpack_outliers(body, offset)

        predictor = InterpolationPredictor(n)
        quantizer = LinearQuantizer(radius)
        reconstructed = np.zeros(n, dtype=np.float64)
        reconstructed[predictor.anchor_indices()] = anchors.astype(np.float64)

        code_pos = 0
        outlier_pos = 0
        for new_idx, left_idx, right_idx in predictor.levels():
            level_codes = codes[code_pos : code_pos + new_idx.size]
            code_pos += new_idx.size
            n_unpred = int((level_codes == 0).sum())
            level_outliers = outliers[outlier_pos : outlier_pos + n_unpred]
            outlier_pos += n_unpred
            predictions = InterpolationPredictor.predict(reconstructed, new_idx, left_idx, right_idx)
            reconstructed[new_idx] = quantizer.dequantize(level_codes, level_outliers, predictions, abs_bound)
        return reconstructed

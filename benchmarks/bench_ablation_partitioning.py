"""Ablation: partitioned FedSZ vs lossy-compressing the whole state dict.

Section V-C argues that lossy-compressing metadata (BatchNorm statistics,
biases) "risks significant loss of important values and extreme degradation of
model accuracy".  This ablation quantifies that: a briefly-trained ResNet50's
state is restored either through the standard partitioned pipeline or through
an everything-lossy pipeline, and the inference accuracy of the restored models
is compared against the unperturbed baseline.
"""

from __future__ import annotations

import numpy as np

from bench_utils import is_quick, save_results
from repro.compressors import SZ2Compressor
from repro.core import FedSZCompressor, FedSZConfig
from repro.data import make_dataset, train_test_split
from repro.metrics import ExperimentRecord, Table, format_bound
from repro.nn import CrossEntropyLoss, SGD, build_model

BOUNDS = (1e-2, 1e-1)


def _train(model, images, labels, epochs, lr=0.05, batch_size=32):
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    for _ in range(epochs):
        for start in range(0, len(labels), batch_size):
            loss_fn(model(images[start:start + batch_size]), labels[start:start + batch_size])
            model.zero_grad()
            model.backward(loss_fn.backward())
            optimizer.step()


def _accuracy(model, images, labels) -> float:
    model.eval()
    acc = float((model(images).argmax(axis=1) == labels).mean())
    model.train(True)
    return acc


def _everything_lossy(state, bound):
    """Lossy-compress every float tensor, metadata included (the ablated variant)."""
    compressor = SZ2Compressor(error_bound=bound)
    out = {}
    for key, value in state.items():
        if np.issubdtype(value.dtype, np.floating) and value.size > 1:
            out[key] = compressor.decompress(compressor.compress(value)).astype(value.dtype)
        else:
            out[key] = value.copy()
    return out


def bench_ablation_partitioning(benchmark):
    image_size = 16 if is_quick() else 32
    dataset = make_dataset("cifar10", n_samples=480 if is_quick() else 2048,
                           image_size=image_size, seed=51)
    train, test = train_test_split(dataset, test_fraction=0.3, seed=52)

    def run():
        model = build_model("resnet50", num_classes=10, in_channels=3,
                            image_size=image_size, seed=0)
        _train(model, train.images, train.labels, epochs=5 if is_quick() else 10)
        baseline_acc = _accuracy(model, test.images, test.labels)
        state = model.state_dict()

        probe = build_model("resnet50", num_classes=10, in_channels=3,
                            image_size=image_size, seed=1)
        rows = []
        for bound in BOUNDS:
            fedsz = FedSZCompressor(FedSZConfig(error_bound=bound))
            partitioned_state = fedsz.decompress_state_dict(fedsz.compress_state_dict(state))
            probe.load_state_dict(partitioned_state)
            partitioned_acc = _accuracy(probe, test.images, test.labels)

            probe.load_state_dict(_everything_lossy(state, bound))
            everything_acc = _accuracy(probe, test.images, test.labels)

            rows.append({
                "bound": bound,
                "baseline_accuracy": baseline_acc,
                "partitioned_accuracy": partitioned_acc,
                "everything_lossy_accuracy": everything_acc,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Ablation - partitioned FedSZ vs lossy-compressing everything (ResNet50)",
                  ["REL bound", "baseline acc", "partitioned (FedSZ) acc", "everything-lossy acc"])
    record = ExperimentRecord("ablation_partitioning", "why metadata must stay lossless")
    for row in rows:
        table.add_row(format_bound(row["bound"]), f"{row['baseline_accuracy']:.2%}",
                      f"{row['partitioned_accuracy']:.2%}", f"{row['everything_lossy_accuracy']:.2%}")
        record.add(**row)
    save_results("ablation_partitioning", table, record)

    for row in rows:
        # the partitioned pipeline tracks the baseline closely...
        assert row["partitioned_accuracy"] >= row["baseline_accuracy"] - 0.15
        # ...and never does worse than compressing the metadata too
        assert row["partitioned_accuracy"] >= row["everything_lossy_accuracy"] - 0.02
    # at the largest bound, destroying BatchNorm statistics hurts accuracy
    worst = rows[-1]
    assert worst["everything_lossy_accuracy"] <= worst["partitioned_accuracy"] + 1e-9

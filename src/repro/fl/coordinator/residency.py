"""Worker-resident client fleets for the persistent round runtime.

On a ``pickles_arguments`` backend the historic train path re-pickles every
:class:`~repro.fl.client.FLClient` — dataset shard included — into the pool on
every round.  The persistent runtime ships the fleet **once**: the
coordinator passes :func:`install_fleet` as the persistent pool's initializer
(see :meth:`~repro.utils.parallel.ExecutionBackend.persistent`), so each
worker receives its resident copy of the fleet when it spawns (and again if a
crashed process worker is respawned — the initializer contract is
once-per-worker, which makes residency self-healing).  Per-round train tasks
then carry only a ``(token, generation)`` reference plus the broadcast global
state, and :func:`resident_client` resolves the reference inside the worker.

The registry is plain module-global process memory:

* **process/subinterpreter workers** get their own copy installed by the
  initializer (that is the point),
* **thread workers and inline degrades** share the caller's registry — the
  coordinator installs the fleet in its own process too, so a map that
  resolves to a single worker (and therefore runs inline) finds the same
  clients the pool workers would,
* **stdlib pools cannot target workers**, so every worker holds the whole
  fleet: ``client_id → worker`` affinity is trivially sticky because any
  worker can train any client from its resident copy, and results stay
  bit-identical because training is a pure function of ``(global_state,
  shard, seed, round_index)`` — ``receive_global`` overwrites the replica's
  state before every local fit.

Invalidation: the *generation* half of the reference.  When the caller's
roster changes, the coordinator bumps the generation — on shared-memory
backends by re-installing (cheap, references only); on pickling backends the
live pool's workers cannot re-run initializers, so the coordinator deactivates
residency instead and falls back to full-client tasks for the rest of the
scope (see ``Coordinator.run_round``).  A stale reference always fails loudly
via :class:`LookupError` rather than training an outdated client.

Reference states (the delta codec's cross-round anchor) follow the same
token/generation discipline through :func:`install_reference` /
:func:`resident_reference`: the transport ships the round's broadcast state to
pickling-backend workers through one shared-memory arena, and the first ship
task each worker runs materializes it into this registry — every later ship
of the round (and the same worker's next rounds, each replacing the last
under the same token) resolves the reference locally instead of re-attaching
the segment.  The generation is the reference's round index, so a task can
never decode a residual against another round's state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    import numpy as np

    from repro.fl.client import FLClient

__all__ = ["install_fleet", "resident_client", "discard_fleet",
           "install_reference", "resident_reference", "discard_reference"]

#: token -> (generation, clients-by-id); one generation per token at a time,
#: so re-installing under the same token frees the previous roster's memory
_FLEETS: "dict[str, tuple[int, dict[int, FLClient]]]" = {}


def install_fleet(token: str, generation: int,
                  clients: "Mapping[int, FLClient]") -> None:
    """Make a client fleet resident in this process (pool-initializer hook).

    Module-level and picklable so a process pool can run it as its worker
    initializer with ``(token, generation, clients)`` as initargs — the one
    place the fleet crosses the pickle boundary per run.
    """
    _FLEETS[token] = (int(generation), dict(clients))


def resident_client(token: str, generation: int, client_id: int) -> "FLClient":
    """Resolve a resident-fleet reference to the worker's client replica.

    Raises :class:`LookupError` for an unknown token, a stale generation, or
    an unknown client id — a resident train task must never silently train
    the wrong (or an outdated) client.
    """
    entry = _FLEETS.get(token)
    if entry is None:
        raise LookupError(
            f"no resident fleet {token!r} in this worker — the pool was "
            f"created without the fleet initializer, or the fleet was "
            f"discarded while tasks referencing it were still in flight")
    installed, clients = entry
    if installed != generation:
        raise LookupError(
            f"resident fleet {token!r} is at generation {installed}, task "
            f"expects {generation} — the client roster changed without the "
            f"coordinator re-installing or deactivating residency")
    try:
        return clients[client_id]
    except KeyError:
        raise LookupError(
            f"client {client_id} is not part of resident fleet {token!r} "
            f"(generation {generation})") from None


def discard_fleet(token: str) -> None:
    """Drop a fleet from this process's registry (idempotent).

    Callers run this when a persistent scope exits.  Thread workers share the
    caller's registry, so this frees the references; process workers' copies
    die with the pool itself.
    """
    _FLEETS.pop(token, None)


#: token -> (generation, reference state); one generation per token at a time,
#: so each round's install frees the previous round's resident copy
_REFERENCES: "dict[str, tuple[int, dict[str, np.ndarray]]]" = {}


def install_reference(token: str, generation: int,
                      state: "Mapping[str, np.ndarray]") -> None:
    """Make a delta reference state resident in this process.

    Workers call this with the state materialized from the transport's shared
    arena; installing the next generation under the same token replaces (and
    frees) the previous round's copy, so worker memory stays one reference
    per transport regardless of run length.
    """
    _REFERENCES[token] = (int(generation), dict(state))


def resident_reference(token: str, generation: int) -> "dict[str, np.ndarray]":
    """Resolve a resident reference, enforcing the generation tag.

    Raises :class:`LookupError` for an unknown token or a stale generation —
    the transport treats that as a cache miss and re-materializes from the
    arena, and nothing can ever decode against another round's reference.
    """
    entry = _REFERENCES.get(token)
    if entry is None:
        raise LookupError(f"no resident reference {token!r} in this worker")
    installed, state = entry
    if installed != generation:
        raise LookupError(
            f"resident reference {token!r} is at generation {installed}, "
            f"task expects {generation}")
    return state


def discard_reference(token: str) -> None:
    """Drop a resident reference from this process's registry (idempotent)."""
    _REFERENCES.pop(token, None)

"""FedSZ core: the paper's primary contribution.

The core package implements Algorithm 1 and Figure 1 of the paper:

1. :mod:`repro.core.partition` — split a model ``state_dict`` into the large
   weight tensors (lossy-compressible) and the remaining metadata
   (lossless-only),
2. :mod:`repro.core.plan` — per-tensor compression plans and the pluggable
   policy registry (uniform / size-adaptive / mixed-codec) that decide each
   lossy tensor's codec, bound, and options,
3. :mod:`repro.core.pipeline` — the plan-driven FedSZ pipeline producing a
   single self-describing (version-4, possibly mixed-codec) bitstream per
   client update,
4. :mod:`repro.core.network` — the bandwidth/benefit model of Eqn. (1),
5. :mod:`repro.core.profiling` — the measured-candidate profiling subsystem
   (sampled roundtrips, cached :class:`TensorProfile`\\ s, Pareto frontier)
   behind the ``profiled`` plan policy,
6. :mod:`repro.core.selection` — the compressor- and error-bound-selection
   optimizers of Problems (2) and (3), now thin wrappers over the profiler.
"""

from repro.core.adaptive import AdaptiveBoundPolicy, AdaptiveFedSZCompressor
from repro.core.config import FedSZConfig
from repro.core.plan import (
    PLAN_PROVENANCE_KEY,
    CompressionPlan,
    CompressionPolicy,
    MixedCodecPolicy,
    SizeAdaptivePolicy,
    TensorPlan,
    UniformPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.core.network import (
    DeviceProfile,
    NetworkModel,
    communication_time,
    compression_is_worthwhile,
    crossover_bandwidth,
    end_to_end_seconds,
    make_client_networks,
    round_communication_time,
)
from repro.core.profiling import (
    AnalyticCostModel,
    CandidateMeasurement,
    CodecProfiler,
    CostModel,
    ProfiledPolicy,
    TensorProfile,
)
from repro.core.partition import (
    PartitionedState,
    lossy_fraction,
    partition_state_dict,
)
from repro.core.pipeline import FedSZCompressor, FedSZReport
from repro.core.selection import (
    CandidateEvaluation,
    select_compressor,
    select_error_bound,
)

__all__ = [
    "FedSZConfig",
    "AdaptiveBoundPolicy",
    "AdaptiveFedSZCompressor",
    "FedSZCompressor",
    "FedSZReport",
    "TensorPlan",
    "CompressionPlan",
    "CompressionPolicy",
    "UniformPolicy",
    "SizeAdaptivePolicy",
    "MixedCodecPolicy",
    "available_policies",
    "get_policy",
    "register_policy",
    "PartitionedState",
    "partition_state_dict",
    "lossy_fraction",
    "NetworkModel",
    "DeviceProfile",
    "communication_time",
    "compression_is_worthwhile",
    "crossover_bandwidth",
    "end_to_end_seconds",
    "make_client_networks",
    "round_communication_time",
    "PLAN_PROVENANCE_KEY",
    "AnalyticCostModel",
    "CandidateMeasurement",
    "CodecProfiler",
    "CostModel",
    "ProfiledPolicy",
    "TensorProfile",
    "CandidateEvaluation",
    "select_compressor",
    "select_error_bound",
]

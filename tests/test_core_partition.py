"""Tests for Algorithm 1's state-dict partitioning."""

import numpy as np
import pytest

from repro.core import FedSZConfig, lossy_fraction, partition_state_dict
from repro.nn import build_model


class TestPartitioning:
    def test_large_weights_go_lossy(self, small_state):
        partition = partition_state_dict(small_state, FedSZConfig(threshold=64))
        assert any(name.endswith("weight") for name in partition.lossy)

    def test_biases_and_buffers_stay_lossless(self):
        state = build_model("resnet50").state_dict()
        partition = partition_state_dict(state, FedSZConfig(threshold=1024))
        for name in partition.lossy:
            assert "weight" in name
        assert any("running_mean" in name for name in partition.lossless)
        assert any("bias" in name for name in partition.lossless)

    def test_threshold_moves_small_weights_to_lossless(self, small_state):
        tight = partition_state_dict(small_state, FedSZConfig(threshold=10**9))
        assert not tight.lossy
        loose = partition_state_dict(small_state, FedSZConfig(threshold=0))
        assert len(loose.lossy) >= len(tight.lossy)

    def test_partition_is_exhaustive_and_disjoint(self, small_state):
        partition = partition_state_dict(small_state, FedSZConfig(threshold=128))
        names = set(partition.lossy) | set(partition.lossless)
        assert names == set(small_state)
        assert not (set(partition.lossy) & set(partition.lossless))

    def test_byte_accounting(self, small_state):
        partition = partition_state_dict(small_state, FedSZConfig(threshold=128))
        total = sum(np.asarray(v).nbytes for v in small_state.values())
        assert partition.total_bytes == total
        assert partition.lossy_bytes + partition.lossless_bytes == total

    def test_integer_tensors_never_lossy(self):
        state = {"counter.weight": np.arange(10_000, dtype=np.int64)}
        partition = partition_state_dict(state, FedSZConfig(threshold=0))
        assert not partition.lossy

    def test_custom_name_tokens(self):
        state = {"encoder.kernel": np.zeros(5000, dtype=np.float32),
                 "encoder.weight": np.zeros(5000, dtype=np.float32)}
        config = FedSZConfig(threshold=0, lossy_name_tokens=("kernel",))
        partition = partition_state_dict(state, config)
        assert "encoder.kernel" in partition.lossy
        assert "encoder.weight" in partition.lossless

    def test_empty_state(self):
        partition = partition_state_dict({}, FedSZConfig())
        assert partition.total_bytes == 0
        assert partition.lossy_fraction == 0.0


class TestLossyFraction:
    def test_paper_ordering_of_lossy_fraction(self):
        # Table III: AlexNet 99.98% > ResNet50 99.47% > MobileNetV2 96.94%
        fractions = {
            name: lossy_fraction(build_model(name).state_dict(), FedSZConfig(threshold=1024))
            for name in ("alexnet", "resnet50", "mobilenetv2")
        }
        assert fractions["alexnet"] > fractions["resnet50"] > fractions["mobilenetv2"]
        assert fractions["alexnet"] > 0.95
        assert fractions["mobilenetv2"] > 0.5

    def test_fraction_in_unit_interval(self, small_state):
        value = lossy_fraction(small_state)
        assert 0.0 <= value <= 1.0


class TestConfig:
    def test_default_matches_paper_recommendation(self):
        config = FedSZConfig()
        assert config.lossy_compressor == "sz2"
        assert config.lossless_codec == "blosclz"
        assert config.error_bound == pytest.approx(1e-2)
        assert config.error_mode.value == "rel"

    def test_invalid_error_bound(self):
        with pytest.raises(ValueError):
            FedSZConfig(error_bound=0.0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FedSZConfig(threshold=-1)

    def test_replace_returns_modified_copy(self):
        config = FedSZConfig()
        other = config.replace(error_bound=1e-3)
        assert other.error_bound == 1e-3
        assert config.error_bound == 1e-2

    def test_error_mode_string_coerced(self):
        config = FedSZConfig(error_mode="abs")
        assert config.error_mode.value == "abs"

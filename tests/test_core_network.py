"""Tests for the Eqn. (1) benefit model and the simulated network."""

import time

import pytest

from repro.core import (
    DeviceProfile,
    NetworkModel,
    communication_time,
    compression_is_worthwhile,
    crossover_bandwidth,
)


class TestCommunicationTime:
    def test_basic_arithmetic(self):
        # 10 MB over 10 Mbps = 8 seconds
        assert communication_time(10e6, 10.0) == pytest.approx(8.0)

    def test_latency_added(self):
        assert communication_time(0, 10.0, latency_s=0.2) == pytest.approx(0.2)

    def test_scales_inversely_with_bandwidth(self):
        slow = communication_time(1e6, 10.0)
        fast = communication_time(1e6, 1000.0)
        assert slow / fast == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            communication_time(1e6, 0.0)
        with pytest.raises(ValueError):
            communication_time(-1, 10.0)


class TestBenefitCriterion:
    def test_worthwhile_on_slow_network(self):
        # 2.4 MB update, 10x compression, 1s overhead, 10 Mbps: clearly worth it
        assert compression_is_worthwhile(0.5, 0.5, 2.4e6, 0.24e6, 10.0)

    def test_not_worthwhile_on_fast_network(self):
        # same costs on a 10 Gbps link: overhead dominates
        assert not compression_is_worthwhile(0.5, 0.5, 2.4e6, 0.24e6, 10_000.0)

    def test_crossover_bandwidth_separates_regimes(self):
        crossover = crossover_bandwidth(0.5, 0.5, 2.4e6, 0.24e6)
        assert compression_is_worthwhile(0.5, 0.5, 2.4e6, 0.24e6, crossover * 0.5)
        assert not compression_is_worthwhile(0.5, 0.5, 2.4e6, 0.24e6, crossover * 2.0)

    def test_crossover_paper_magnitude(self):
        # AlexNet-like numbers from Table I: 230 MB update, 12x ratio, ~4 s
        # compression + decompression on the edge device → crossover in the
        # hundreds of Mbps (Figure 8 reports ~500 Mbps)
        crossover = crossover_bandwidth(3.2, 1.0, 230e6, 230e6 / 12.61)
        assert 100.0 < crossover < 2000.0

    def test_zero_overhead_always_worthwhile(self):
        assert crossover_bandwidth(0.0, 0.0, 1e6, 5e5) == float("inf")

    def test_no_size_reduction_never_worthwhile(self):
        assert crossover_bandwidth(0.1, 0.1, 1e6, 1e6) == 0.0
        assert not compression_is_worthwhile(0.1, 0.1, 1e6, 1.2e6, 10.0)

    def test_no_savings_and_no_overhead_is_never_worthwhile(self):
        # regression: a codec that saves no bytes has crossover 0.0 even when
        # it also costs no time — the overhead check used to win and claim inf
        assert crossover_bandwidth(0.0, 0.0, 1e6, 1e6) == 0.0
        assert crossover_bandwidth(0.0, 0.0, 1e6, 2e6) == 0.0


class TestNetworkModel:
    def test_transfer_time_matches_formula(self):
        net = NetworkModel(bandwidth_mbps=100.0, latency_s=0.01)
        assert net.transfer_time(1e6) == pytest.approx(0.01 + 8e6 / 100e6)

    def test_transfer_no_sleep_by_default(self):
        net = NetworkModel(bandwidth_mbps=0.001)  # would be a very long sleep
        start = time.perf_counter()
        duration = net.transfer(1e6)
        assert time.perf_counter() - start < 0.5
        assert duration > 100  # modeled time is still large

    def test_transfer_with_simulated_delay(self):
        net = NetworkModel(bandwidth_mbps=1000.0, simulate_delay=True)
        start = time.perf_counter()
        net.transfer(2.5e6)  # 20 ms at 1 Gbps
        assert time.perf_counter() - start >= 0.015


class TestDeviceProfile:
    def test_scaling(self):
        profile = DeviceProfile(compute_factor=3.0)
        assert profile.scale(2.0) == pytest.approx(6.0)

    def test_default_is_raspberry_pi(self):
        assert "pi" in DeviceProfile().name

"""The round coordinator: scheduler + transport + aggregator + journal.

:class:`Coordinator` is the service-layer replacement for the monolithic round
loop that used to live inside ``FederatedSimulation.run_round``.  It composes

* a :class:`~repro.fl.coordinator.scheduler.RoundScheduler` (seeded scenario
  draws),
* a :class:`~repro.fl.coordinator.transport.Transport` (encode → transfer →
  decode, pooled or asyncio-overlapped),
* a :class:`~repro.fl.server.FedAvgServer` whose aggregation routes through an
  :class:`~repro.fl.coordinator.aggregator.Aggregator` (flat or tree),
* an optional :class:`~repro.fl.coordinator.journal.RoundJournal` for durable,
  resumable rounds, and
* a :class:`~repro.fl.coordinator.scheduler.StalenessPolicy` deciding the fate
  of updates that miss the round deadline.

Determinism contract: every quantity that decides *numerics* (scenario draws,
batch order, transfer-time lateness, aggregation order) is a pure function of
the scenario seed and the round index — never of wall clock, worker count, or
overlap mode.  Wall-clock measurements (train/encode/decode seconds) ride
along as data.  That is what makes a journal resume bit-identical on every
deterministic field: completed rounds replay from their records, the
interrupted round re-derives its plan, replays already-shipped payloads
(decode is deterministic), and re-trains only the clients that never shipped
(training is a pure function of global state, shard, seed, and round index).
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.network import round_communication_time
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.coordinator.aggregator import ArrivalAggregator
from repro.fl.coordinator.journal import JournalState, RoundJournal, ShippedEvent
from repro.fl.coordinator.records import RoundRecord, SimulationResult
from repro.fl.coordinator.residency import (discard_fleet, install_fleet,
                                            resident_client)
from repro.fl.coordinator.scheduler import RoundScheduler, StalenessPolicy
from repro.fl.coordinator.transport import ShipResult, ShipTask, Transport
from repro.fl.delta import DeltaTracker, DeltaUpdateCodec
from repro.utils.parallel import (ArenaHandle, ExecutionBackend,
                                  SharedMemoryArena, get_backend)

# NOTE: fl/server.py imports the aggregation kernel from this package, so this
# module must not import fl.server back at runtime — the server below is typed
# by its duck interface (global_state / aggregate / apply_aggregate / evaluate
# / model).

__all__ = ["Coordinator", "TrainTask", "train_clients_parallel", "OVERLAP_MODES"]

#: how a round's uplinks share time: "pool" fans ship tasks over the execution
#: backend (the historic path); "async" holds every uplink in flight on one
#: event loop, simulated delays becoming awaits
OVERLAP_MODES = ("pool", "async")

#: resident-fleet tokens are unique per (process, coordinator scope) so two
#: concurrent coordinators in one process can never collide
_FLEET_COUNTER = itertools.count()


@dataclass
class TrainTask:
    """Picklable argument struct for :func:`_train_client_task`.

    Same contract as the transport's :class:`ShipTask`: a module-level task
    function over an explicit struct, so the process backend's picklability
    contract holds by construction.  Exactly one of two client forms is set —

    * ``client`` — the full-ship path: the :class:`FLClient` (dataset shard
      included) travels inside the task, paying O(shard bytes) of pickling
      per client per round on pickling backends;
    * ``fleet`` — the worker-resident path: a ``(token, generation)``
      reference into the fleet a persistent pool's initializer installed
      (:mod:`repro.fl.coordinator.residency`), so the task ships O(model
      state) only —

    and the broadcast global state arrives either inline (``global_state``)
    or, on ``pickles_arguments`` backends, as a :class:`ArenaHandle` into one
    shared-memory segment the coordinator packs once per round
    (``state_handle``).
    """

    client_id: int
    epochs: int
    round_index: int
    global_state: "dict[str, np.ndarray] | None" = None
    state_handle: "ArenaHandle | None" = None
    client: "FLClient | None" = None
    fleet: "tuple[str, int] | None" = field(default=None, repr=False)


def _train_client_task(task: TrainTask) -> ClientUpdate:
    """Broadcast-and-train one client from a :class:`TrainTask`.

    Module-level and picklable for the process backend.  The broadcast happens
    inside the task (clients are independent, so receive-then-train per client
    is bit-identical to a global broadcast followed by training), and the
    updated state travels back in the returned :class:`ClientUpdate` — the
    caller re-absorbs it into its own replica when the backend does not share
    memory.  Arena-shipped state is handed to ``receive_global`` as read-only
    views — safe because ``Module.load_state_dict`` copies every array.
    """
    client = task.client
    if client is None:
        token, generation = task.fleet
        client = resident_client(token, generation, task.client_id)
    if task.state_handle is not None:
        with task.state_handle.open() as view:
            client.receive_global(view.arrays())
    else:
        client.receive_global(task.global_state)
    return client.train_local(epochs=task.epochs, round_index=task.round_index)


def train_clients_parallel(clients: Sequence[FLClient], global_state: dict,
                           epochs: int = 1, max_workers: "int | None" = None,
                           backend: "str | ExecutionBackend" = "thread",
                           round_index: int = 0) -> "list[ClientUpdate]":
    """Broadcast ``global_state`` to every client and train them concurrently.

    Returns the per-client :class:`ClientUpdate` objects in client order, ready
    for FedAvg aggregation.  Each client owns a private model replica (and
    ``receive_global`` copies the broadcast arrays), so no state is shared
    between training workers; on a process backend the trained state is loaded
    back into the caller's replicas so every backend leaves the clients in the
    same state.  ``round_index`` is mixed into each client's batch-shuffle seed
    so successive rounds see fresh batch orders (round 0 reproduces the
    historic order).

    This is the full-ship path: every task carries its client.  The
    coordinator's persistent runtime replaces it with worker-resident tasks
    (see :meth:`Coordinator.persistent_runtime`) — bit-identically, since
    training is a pure function of ``(global_state, shard, seed, round)``.
    """
    exec_backend = get_backend(backend)
    updates = exec_backend.map(
        _train_client_task,
        [TrainTask(client_id=client.client_id, epochs=epochs,
                   round_index=round_index, global_state=global_state,
                   client=client) for client in clients],
        workers=max_workers)
    if not exec_backend.shared_memory:
        for client, update in zip(clients, updates):
            client.receive_global(update.state)
    return updates


@dataclass
class _Shipment:
    """One client's completed ship this round plus its training measurements."""

    result: ShipResult
    train_seconds: float  # raw (un-inflated) — stragglers are scaled at record time
    train_loss: float
    num_samples: int
    late: bool = False
    replayed: bool = False
    #: the delta tracker's journal sidecar for this ship (accumulator +
    #: codebook tables); ``None`` without a delta codec or a journal
    delta_sidecar: "bytes | None" = None


@dataclass
class _LateUpdate:
    """A decoded late update queued for the staleness policy."""

    origin_round: int
    client_id: int
    state: "dict[str, np.ndarray]"
    num_samples: int


@dataclass
class _ResidentFleet:
    """Book-keeping for the fleet installed in a persistent scope's workers.

    ``signature`` is the roster fingerprint the fleet was installed under;
    ``active`` flips to False when the roster changes on a backend whose live
    pool cannot re-run initializers (see ``Coordinator._refresh_residency``).
    """

    token: str
    generation: int
    signature: tuple
    active: bool = True


class Coordinator:
    """Runs federated rounds by composing the coordinator services.

    Construction wires the services together; :meth:`run_round` executes one
    round (training → transport → staleness triage → aggregation → validation
    → journal), and :meth:`run` produces a :class:`SimulationResult`, replaying
    journaled rounds first when resuming.
    """

    def __init__(self, *, clients: Sequence[FLClient], server,
                 scheduler: RoundScheduler, transport: Transport,
                 client_codecs: Sequence, client_networks: Sequence,
                 codec_name: str, local_epochs: int = 1,
                 straggler_slowdown: float = 4.0, uplink: str = "serial",
                 backend: "str | ExecutionBackend" = "thread",
                 max_workers: "int | None" = 1, overlap: str = "pool",
                 round_deadline_s: "float | None" = None,
                 staleness: "StalenessPolicy | None" = None,
                 journal: "RoundJournal | None" = None,
                 journal_state: "JournalState | None" = None,
                 persistent: bool = True,
                 aggregate_on_arrival: bool = False) -> None:
        if overlap not in OVERLAP_MODES:
            raise ValueError(f"overlap must be one of {OVERLAP_MODES}, got {overlap!r}")
        if round_deadline_s is not None and round_deadline_s <= 0:
            raise ValueError("round_deadline_s must be positive")
        self.clients = list(clients)
        self.server = server
        self.scheduler = scheduler
        self.transport = transport
        self.client_codecs = list(client_codecs)
        self.client_networks = list(client_networks)
        self.codec_name = codec_name
        self.local_epochs = int(local_epochs)
        self.straggler_slowdown = float(straggler_slowdown)
        self.uplink = uplink
        self.backend = get_backend(backend)
        self.max_workers = max_workers
        self.overlap = overlap
        self.round_deadline_s = round_deadline_s
        # aggregate-on-arrival folds each decoded update into a running
        # compensated partial as its ship completes (bit-identical to the
        # batch aggregation; see ArrivalAggregator).  A round deadline makes
        # membership depend on per-ship transfer times, so deadline rounds
        # degrade to batch-at-end aggregation.
        self.aggregate_on_arrival = bool(aggregate_on_arrival)
        self.staleness = staleness if staleness is not None else StalenessPolicy()
        self.journal = journal
        self.persistent = bool(persistent)
        self._resident: "_ResidentFleet | None" = None
        # cross-round delta state: one tracker over every delta-wrapped codec
        # (None when the fleet ships plain updates — zero behavior change)
        delta_codecs = {cid: codec
                        for cid, codec in enumerate(self.client_codecs)
                        if isinstance(codec, DeltaUpdateCodec)}
        self._delta = DeltaTracker(delta_codecs) if delta_codecs else None

        self._run_started = False
        self._completed: "list[RoundRecord]" = []
        self._partial = None
        self._pending_late: "list[_LateUpdate]" = []
        if journal_state is not None:
            if journal is None:
                raise ValueError("journal_state requires a journal to replay from")
            self._restore(journal_state)

    # -- resume ------------------------------------------------------------
    def _restore(self, state: JournalState) -> None:
        """Adopt a journal's replayed state: records, snapshot, late queue."""
        if state.codec_name != self.codec_name:
            raise ValueError(f"journal was written by codec {state.codec_name!r}, "
                             f"this run uses {self.codec_name!r}")
        if state.n_clients != len(self.clients):
            raise ValueError(f"journal expects {state.n_clients} clients, "
                             f"this run has {len(self.clients)}")
        if state.scenario_seed != self.scheduler.seed:
            raise ValueError(f"journal scenario seed {state.scenario_seed} does not "
                             f"match this run's seed {self.scheduler.seed}")
        self._completed = list(state.records)
        self._partial = state.partial
        if self._delta is not None:
            # channels first: a failed late replay below must be able to
            # overwrite the restored state with its invalidation
            self._delta.restore(state.delta_state, self._read_sidecar)
        self._pending_late = [
            late for late in (self._late_from_event(event)
                              for event in state.pending_late)
            if late is not None]
        if state.snapshot_path is not None:
            snapshot = self.journal.load_snapshot(state.snapshot_path)
            self.server.model.load_state_dict(snapshot)
        self._run_started = True  # the journaled header already exists

    def _read_sidecar(self, path: str) -> "bytes | None":
        """A journaled delta sidecar's bytes, or ``None`` when unreadable —
        the tracker degrades the client to a full ship (``resume-loss``)."""
        try:
            return (self.journal.directory / path).read_bytes()
        except OSError:
            return None

    def _late_from_event(self, event: ShippedEvent) -> "_LateUpdate | None":
        payload = self.journal.read_payload(event)
        codec = self.client_codecs[event.client_id]
        if self._delta is not None and isinstance(codec, DeltaUpdateCodec):
            # a journaled delta payload decodes only against the broadcast
            # state of its origin round — rearm from that round's snapshot
            try:
                reference = self.journal.load_snapshot(
                    self.journal.reference_snapshot(event.round_index))
            except (OSError, ValueError):
                # the snapshot is gone: this update can never be decoded
                # against the right reference — drop it rather than guess
                self._delta.invalidate(event.client_id, "replay-loss")
                return None
            codec.arm(reference, event.round_index, delta=False)
            try:
                state = codec.decode(payload)
            finally:
                codec.disarm()
        else:
            state = codec.decode(payload)
        return _LateUpdate(origin_round=event.round_index,
                           client_id=event.client_id, state=state,
                           num_samples=event.num_samples)

    def _materialize(self, event: ShippedEvent) -> _Shipment:
        """Rebuild a shipped update from the journal instead of re-running it."""
        payload = self.journal.read_payload(event)
        state = self.client_codecs[event.client_id].decode(payload)
        if self._delta is not None:
            try:
                blob = self.journal.read_delta(event)
            except OSError:
                blob = None
            self._delta.adopt_replayed(event.client_id, blob,
                                       late=event.status == "late")
        result = ShipResult(client_id=event.client_id,
                            payload_bytes=event.payload_bytes,
                            raw_bytes=event.raw_bytes,
                            encode_seconds=event.encode_seconds,
                            transfer_seconds=event.transfer_seconds,
                            decode_seconds=event.decode_seconds,
                            state=state, report=event.rebuild_report())
        return _Shipment(result=result, train_seconds=event.train_seconds,
                         train_loss=event.train_loss,
                         num_samples=event.num_samples,
                         late=event.status == "late", replayed=True)

    # -- execution ---------------------------------------------------------
    def _ensure_run_started(self) -> None:
        if self.journal is not None and not self._run_started:
            self.journal.begin_run(self.codec_name, self.scheduler.seed,
                                   len(self.clients), self.server.global_state())
            self._run_started = True

    def _ship(self, tasks: "list[ShipTask]") -> "list[ShipResult]":
        """Ship a round's updates through the configured overlap mode."""
        if not tasks:
            return []
        if self.overlap == "async":
            async def _all_uplinks():
                return await asyncio.gather(
                    *(self.transport.ship_async(task) for task in tasks))
            return list(asyncio.run(_all_uplinks()))
        return self.transport.ship_batch(tasks)

    def _ship_arrival(self, tasks: "list[ShipTask]", on_arrival) -> None:
        """Ship a round's updates, invoking ``on_arrival(index, result)`` as
        each completes instead of materializing the full result list.

        The aggregate-on-arrival driver: the handler folds each decoded update
        into the running aggregate and releases its buffers, so peak resident
        updates is the in-flight window, not the round's fan-in.  Results may
        arrive out of task order under concurrency; every result carries the
        same values the batch path would (the transport's contract).
        """
        if not tasks:
            return
        if self.overlap == "async":
            async def _all_uplinks():
                async def _one(index: int, task: ShipTask):
                    return index, await self.transport.ship_async(task)
                pending = [_one(index, task) for index, task in enumerate(tasks)]
                for next_done in asyncio.as_completed(pending):
                    index, result = await next_done
                    on_arrival(index, result)
            asyncio.run(_all_uplinks())
            return
        for index, result in self.transport.ship_iter(tasks):
            on_arrival(index, result)

    # -- persistent runtime -------------------------------------------------
    @contextlib.contextmanager
    def persistent_runtime(self):
        """Scope that backs every round with one pool and resident clients.

        Entering the scope spins the execution backend's persistent pool up
        once (:meth:`ExecutionBackend.persistent`), installing the client
        fleet into every worker via the pool initializer on
        ``pickles_arguments`` backends — so each round's train tasks ship
        O(model state) instead of O(dataset shard).  The fleet is *also*
        installed in the calling process, which is what thread workers and
        inline degrades (``serial``, one resolved worker, nested process
        workers) resolve against.

        Re-entrant calls and ``persistent=False`` coordinators are no-ops, so
        :meth:`run` can always wrap its round loop.  On exit the pool is torn
        down and the fleet discarded; tasks must not outlive the scope.
        """
        if not self.persistent or self._resident is not None:
            yield
            return
        token = f"fleet-{os.getpid()}-{next(_FLEET_COUNTER)}"
        roster = {client.client_id: client for client in self.clients}
        install_fleet(token, 0, roster)
        initializer = install_fleet if self.backend.pickles_arguments else None
        initargs = (token, 0, roster) if initializer is not None else ()
        self._resident = _ResidentFleet(token=token, generation=0,
                                        signature=self._roster_signature())
        try:
            with self.backend.persistent(self.max_workers,
                                         initializer=initializer,
                                         initargs=initargs):
                yield
        finally:
            self._resident = None
            discard_fleet(token)

    def _roster_signature(self) -> tuple:
        """Fingerprint of the client roster the resident fleet mirrors.

        Identity-based on purpose: replacing a client (or its dataset shard)
        with a different object must invalidate residency even if the new one
        compares equal, because the workers hold copies of the *old* objects.
        """
        return tuple((client.client_id, id(client), id(client.dataset))
                     for client in self.clients)

    def _refresh_residency(self, resident: _ResidentFleet) -> None:
        """Reconcile the resident fleet with a changed client roster.

        Shared-memory backends re-install under a bumped generation (cheap —
        the registry holds references, not copies).  Pickling backends cannot
        re-run initializers in a live pool, so residency deactivates and the
        remaining rounds fall back to full-client tasks — still over the
        persistent pool, so only the O(shard) shipping saving is lost.
        """
        signature = self._roster_signature()
        if signature == resident.signature:
            return
        if self.backend.pickles_arguments:
            resident.active = False
        else:
            resident.generation += 1
            install_fleet(resident.token, resident.generation,
                          {client.client_id: client for client in self.clients})
        resident.signature = signature

    def _train_round(self, fresh_ids: "list[int]", global_state: dict,
                     round_index: int) -> "list[ClientUpdate]":
        """Train this round's fresh participants, resident when possible."""
        if not fresh_ids:
            return []
        resident = self._resident
        if resident is not None:
            self._refresh_residency(resident)
            if resident.active:
                return self._train_resident(fresh_ids, global_state, round_index)
        return train_clients_parallel(
            [self.clients[cid] for cid in fresh_ids], global_state,
            epochs=self.local_epochs, max_workers=self.max_workers,
            backend=self.backend, round_index=round_index)

    def _train_resident(self, fresh_ids: "list[int]", global_state: dict,
                        round_index: int) -> "list[ClientUpdate]":
        """Worker-resident training: tasks reference the installed fleet.

        On ``pickles_arguments`` backends the broadcast state is packed into
        one :class:`SharedMemoryArena` per round and tasks carry only its
        handle, so the per-round pickle cost is O(task metadata).  Bit-
        identical to :func:`train_clients_parallel` because training is a pure
        function of ``(global_state, shard, seed, round_index)``.
        """
        resident = self._resident
        fleet = (resident.token, resident.generation)
        arena = SharedMemoryArena(global_state) \
            if self.backend.pickles_arguments else None
        try:
            tasks = [
                TrainTask(client_id=cid, epochs=self.local_epochs,
                          round_index=round_index,
                          global_state=None if arena is not None else global_state,
                          state_handle=arena.handle if arena is not None else None,
                          fleet=fleet)
                for cid in fresh_ids
            ]
            updates = self.backend.map(_train_client_task, tasks,
                                       workers=self.max_workers)
        finally:
            if arena is not None:
                arena.close()
        if not self.backend.shared_memory:
            for cid, update in zip(fresh_ids, updates):
                self.clients[cid].receive_global(update.state)
        return updates

    def _aggregate_arrivals(self, round_index: int, plan, tasks: "list[ShipTask]",
                            fresh_ids: "list[int]", updates: "list[ClientUpdate]",
                            shipments: "dict[int, _Shipment]",
                            admitted: "list[_LateUpdate]") -> "int | None":
        """Ship and fold: each update merges into the running aggregate as its
        ship lands, and its buffers are released, so server-side peak decoded-
        update residency is the transport's in-flight window — O(workers), not
        O(participants).  Bit-identical to the batch path because the weight
        vector, the leaves, and the fold order are exactly
        :class:`FlatAggregator`'s (participants in plan order, then admitted
        late updates); arrival order moves only the wall-clock moment of each
        merge.  Returns the peak resident update count (``None`` when the
        round aggregated nothing).
        """
        samples = {cid: update.num_samples
                   for cid, update in zip(fresh_ids, updates)}
        for cid, shipment in shipments.items():
            samples[cid] = shipment.num_samples
        weights = [samples[cid] for cid in plan.participants] \
            + [late.num_samples for late in admitted]
        if not weights:
            self.server.aggregate([], [], allow_empty=True)
            return None
        arrival = ArrivalAggregator(weights)
        position = {cid: index for index, cid in enumerate(plan.participants)}
        # replayed ships and admitted late updates are already decoded — they
        # take their reorder slots up front (they were resident regardless:
        # the journal replay and the staleness queue held them)
        for cid, shipment in shipments.items():
            arrival.add(position[cid], shipment.result.state)
            shipment.result.state = {}
        for offset, late in enumerate(admitted):
            arrival.add(len(plan.participants) + offset, late.state)

        def _on_arrival(index: int, result: ShipResult) -> None:
            cid = fresh_ids[index]
            update = updates[index]
            shipment = _Shipment(result=result,
                                 train_seconds=update.train_seconds,
                                 train_loss=update.train_loss,
                                 num_samples=update.num_samples)
            shipments[cid] = shipment
            if self._delta is not None:
                # per-client channels are independent, so folding in arrival
                # order is deterministic anyway; must run before the decoded
                # state is released below
                shipment.delta_sidecar = self._delta.complete_ship(
                    cid, update.state, result.state, result.report,
                    sidecar=self.journal is not None)
            if self.journal is not None:
                # journaled at arrival — event order follows completion order,
                # but replay keys events by client, so resume is unaffected
                self.journal.record_shipped(round_index, result,
                                            shipment.train_seconds,
                                            shipment.train_loss,
                                            shipment.num_samples,
                                            status="ontime",
                                            delta_sidecar=shipment.delta_sidecar)
            arrival.add(position[cid], result.state)
            # folded: the decoded update (and any journaled payload copy) is
            # not needed again — release before the next ship lands
            result.state = {}
            result.payload = None

        self._ship_arrival(tasks, _on_arrival)
        self.server.apply_aggregate(arrival.finalize())
        return max(arrival.peak_resident, 1)

    def _profile_cache_counters(self) -> "dict[str, int] | None":
        """Fleet-wide profiler cache counters, or None without profilers.

        Client codecs that expose a ``profiler`` (the ``profiled`` policy)
        usually share one instance across the fleet, so profilers are deduped
        by identity before summing their :meth:`cache_info` counters.
        """
        profilers, seen = [], set()
        for codec in self.client_codecs:
            profiler = getattr(codec, "profiler", None)
            if profiler is not None and id(profiler) not in seen:
                seen.add(id(profiler))
                profilers.append(profiler)
        if not profilers:
            return None
        totals = {"hits": 0, "misses": 0, "drifts": 0, "profiles": 0}
        for profiler in profilers:
            info = profiler.cache_info()
            for key in totals:
                totals[key] += int(info.get(key, 0))
        return totals

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one communication round and return its measurements."""
        self._ensure_run_started()
        global_state = self.server.global_state()
        plan = self.scheduler.plan_round(round_index)

        # when resuming into a partially-journaled round, replay what shipped
        replayed: "dict[int, ShippedEvent]" = {}
        resumed = False
        if self._partial is not None and self._partial.plan.round_index == round_index:
            if self._partial.plan != plan:
                raise ValueError(f"journaled plan for round {round_index} does not "
                                 f"match the scheduler's draw — seed or scenario "
                                 f"knobs changed between runs")
            replayed = self._partial.shipped
            self._partial = None
            resumed = True
        if self.journal is not None:
            self.journal.begin_round(plan, resumed=resumed)
        if self._delta is not None:
            # arm every participant's codec against this round's broadcast
            # (delta when the channel is warm, full otherwise) and invalidate
            # dropped clients — before training, replay, and shipping
            self._delta.begin_round(round_index, global_state, plan,
                                    self._roster_signature())

        straggler_set = set(plan.stragglers)
        fresh_ids = [cid for cid in plan.participants if cid not in replayed]
        updates = self._train_round(fresh_ids, global_state, round_index)

        keep_payload = self.journal is not None
        tasks = [
            ShipTask(client_id=cid, state=update.state,
                     codec=self.client_codecs[cid],
                     network=self.client_networks[cid],
                     straggler_slowdown=self.straggler_slowdown
                     if cid in straggler_set else 1.0,
                     keep_payload=keep_payload)
            for cid, update in zip(fresh_ids, updates)
        ]

        # staleness triage: previously-queued late updates are absorbed at the
        # first admissible round and dropped once they expire.  A pure
        # function of the queue and the round index, computed before shipping
        # because the arrival path needs the admitted set (and with it the
        # round's complete weight vector) before the first ship lands.
        admitted = [late for late in self._pending_late
                    if self.staleness.admits(late.origin_round, round_index)]
        admitted.sort(key=lambda late: (late.origin_round, late.client_id))
        self._pending_late = [late for late in self._pending_late
                              if not self.staleness.admits(late.origin_round, round_index)
                              and not self.staleness.expired(late.origin_round, round_index)]

        shipments: "dict[int, _Shipment]" = {}
        for cid, event in replayed.items():
            shipments[cid] = self._materialize(event)

        # aggregate-on-arrival needs the round's membership fixed before the
        # first ship completes: no deadline means no fresh ship can be late,
        # and a resumed journal must not carry late-status replays either
        arrival_active = (self.aggregate_on_arrival
                          and self.round_deadline_s is None
                          and not any(s.late for s in shipments.values()))
        if arrival_active:
            peak_residency = self._aggregate_arrivals(
                round_index, plan, tasks, fresh_ids, updates, shipments, admitted)
            ontime = list(plan.participants)
            late_ids: "list[int]" = []
        else:
            results = self._ship(tasks)
            for cid, update, result in zip(fresh_ids, updates, results):
                shipment = _Shipment(result=result, train_seconds=update.train_seconds,
                                     train_loss=update.train_loss,
                                     num_samples=update.num_samples)
                # lateness is decided on the *modeled* transfer time, which is
                # analytic and straggler-inflated — never on wall clock
                shipment.late = (self.round_deadline_s is not None
                                 and result.transfer_seconds > self.round_deadline_s)
                shipments[cid] = shipment
                if self._delta is not None:
                    if shipment.late:
                        # the server never acknowledged this state — the
                        # client's reference is gone until its next full ship
                        self._delta.invalidate(cid, "late")
                    else:
                        shipment.delta_sidecar = self._delta.complete_ship(
                            cid, update.state, result.state, result.report,
                            sidecar=self.journal is not None)

            if self.journal is not None:
                for cid in plan.participants:
                    shipment = shipments[cid]
                    if shipment.replayed:
                        continue  # already journaled by the interrupted run
                    self.journal.record_shipped(
                        round_index, shipment.result, shipment.train_seconds,
                        shipment.train_loss, shipment.num_samples,
                        status="late" if shipment.late else "ontime",
                        delta_sidecar=shipment.delta_sidecar)

            ontime = [cid for cid in plan.participants if not shipments[cid].late]
            late_ids = [cid for cid in plan.participants if shipments[cid].late]
            states = [shipments[cid].result.state for cid in ontime] \
                + [late.state for late in admitted]
            weights = [shipments[cid].num_samples for cid in ontime] \
                + [late.num_samples for late in admitted]
            self.server.aggregate(states, weights, allow_empty=True)
            peak_residency = len(states) if states else None

        start = time.perf_counter()
        accuracy = self.server.evaluate()
        validation_seconds = time.perf_counter() - start

        # this round's late updates join the queue for the next round's triage
        for cid in late_ids:
            shipment = shipments[cid]
            self._pending_late.append(_LateUpdate(
                origin_round=round_index, client_id=cid,
                state=shipment.result.state, num_samples=shipment.num_samples))

        delta_clients: "list[int]" = []
        delta_degrades: "dict[int, str]" = {}
        codebook_cache = None
        if self._delta is not None:
            delta_clients, delta_degrades, codebook_cache = \
                self._delta.round_summary()
            # release the armed references/accumulators — parked codecs must
            # not pin this round's broadcast state in memory
            self._delta.disarm_all()

        ordered = [shipments[cid] for cid in plan.participants]
        train_times = [
            shipment.train_seconds
            * (self.straggler_slowdown if cid in straggler_set else 1.0)
            for cid, shipment in zip(plan.participants, ordered)
        ]
        client_reports = {cid: shipments[cid].result.report
                          for cid in plan.participants
                          if shipments[cid].result.report is not None}
        client_plans = {cid: report.plan for cid, report in client_reports.items()
                        if report.plan is not None}

        def _mean(values: "list[float]") -> float:
            return float(np.mean(values)) if values else 0.0

        # streamed-encode measurements ride on fresh ships only (replayed
        # shipments rebuild without them) and are None-off like profile_cache
        streamed = [s.result for s in ordered
                    if s.result.first_byte_seconds is not None]
        record = RoundRecord(
            round_index=round_index,
            accuracy=accuracy,
            mean_train_seconds=_mean(train_times),
            mean_encode_seconds=_mean([s.result.encode_seconds for s in ordered]),
            mean_decode_seconds=_mean([s.result.decode_seconds for s in ordered]),
            validation_seconds=validation_seconds,
            uncompressed_bytes=sum(s.result.raw_bytes for s in ordered),
            transmitted_bytes=sum(s.result.payload_bytes for s in ordered),
            communication_seconds=round_communication_time(
                [s.result.transfer_seconds for s in ordered], self.uplink),
            client_losses=[s.train_loss for s in ordered],
            participants=list(ontime),
            dropped_clients=list(plan.dropped),
            straggler_clients=list(plan.stragglers),
            client_reports=client_reports,
            client_plans=client_plans,
            late_clients=list(late_ids),
            absorbed_clients={late.client_id: late.origin_round
                              for late in admitted},
            profile_cache=self._profile_cache_counters(),
            peak_encode_scratch_bytes=max(
                (s.result.encode_scratch_bytes for s in ordered), default=0),
            mean_first_byte_seconds=_mean(
                [r.first_byte_seconds for r in streamed]) if streamed else None,
            mean_encode_overlap_seconds=_mean(
                [r.encode_overlap_seconds for r in streamed]) if streamed else None,
            peak_update_residency=peak_residency,
            delta_clients=delta_clients,
            delta_degrades=delta_degrades,
            codebook_cache=codebook_cache,
        )
        if self.journal is not None:
            self.journal.complete_round(record, self.server.global_state())
        return record

    def run(self, n_rounds: int = 10) -> SimulationResult:
        """Run (or resume) ``n_rounds`` rounds and collect the records.

        Rounds already completed in the journal replay as-is; the interrupted
        round (if any) resumes from its journaled ships; the rest run live.
        """
        result = SimulationResult(codec_name=self.codec_name)
        result.rounds.extend(self._completed[:n_rounds])
        if len(result.rounds) >= n_rounds:
            return result
        with self.persistent_runtime():
            for round_index in range(len(result.rounds), n_rounds):
                result.rounds.append(self.run_round(round_index))
        return result

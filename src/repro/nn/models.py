"""Model architectures profiled by the paper, scaled for CPU training.

The paper evaluates AlexNet, MobileNetV2, and ResNet50 (Table III).  The
reproduction keeps each architecture's structural signature — AlexNet's large
fully-connected head, MobileNetV2's inverted residuals with depthwise
convolutions and many BatchNorm buffers, ResNet50's bottleneck residual
stages — but scales channel widths and block counts so that federated training
runs on a CPU with NumPy.  Two additional small models (:class:`SimpleCNN`,
:class:`MLP`) are provided for fast tests and examples.

The relative ordering of parameter counts (AlexNet > ResNet50 > MobileNetV2)
and of the lossy-compressible fraction of the state dict (AlexNet highest,
MobileNetV2 lowest, because BN buffers are a larger share of its state) matches
Table III of the paper.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.blocks import Bottleneck, ConvBNReLU, InvertedResidual
from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.utils.rng import make_rng

__all__ = [
    "AlexNet",
    "MobileNetV2",
    "ResNet50",
    "SimpleCNN",
    "MLP",
    "available_models",
    "build_model",
    "count_parameters",
    "state_dict_nbytes",
    "estimate_flops",
    "model_profile",
]


class AlexNet(Module):
    """Scaled AlexNet: convolutional features followed by a large FC head.

    Most of the parameters live in the classifier, as in the original — this is
    why the paper reports 99.98% of AlexNet's state as lossy-compressible.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                 width: int = 32, hidden: int = 384, seed: int | None = 0) -> None:
        super().__init__()
        rng = make_rng(seed)
        self.features = Sequential(
            Conv2d(in_channels, width, 5, stride=1, padding=2, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width * 2, width * 3, 3, padding=1, rng=rng),
            ReLU(),
            Conv2d(width * 3, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        flat_dim = self._infer_flat_dim(in_channels, image_size)
        self.classifier = Sequential(
            Flatten(),
            Dropout(0.3, rng=rng),
            Linear(flat_dim, hidden, rng=rng),
            ReLU(),
            Dropout(0.3, rng=rng),
            Linear(hidden, hidden // 2, rng=rng),
            ReLU(),
            Linear(hidden // 2, num_classes, rng=rng),
        )

    def _infer_flat_dim(self, in_channels: int, image_size: int) -> int:
        probe = np.zeros((1, in_channels, image_size, image_size), dtype=np.float32)
        out = self.features(probe)
        return int(np.prod(out.shape[1:]))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad))


class MobileNetV2(Module):
    """Scaled MobileNetV2: inverted residual blocks with depthwise convolutions."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                 width: int = 16, seed: int | None = 0) -> None:
        super().__init__()
        rng = make_rng(seed)
        del image_size  # fully convolutional; kept for a uniform constructor signature
        w = width
        self.stem = ConvBNReLU(in_channels, w, kernel_size=3, stride=2, relu6=True, rng=rng)
        self.blocks = Sequential(
            InvertedResidual(w, w, stride=1, expand_ratio=1, rng=rng),
            InvertedResidual(w, w * 2, stride=2, expand_ratio=4, rng=rng),
            InvertedResidual(w * 2, w * 2, stride=1, expand_ratio=4, rng=rng),
            InvertedResidual(w * 2, w * 3, stride=2, expand_ratio=4, rng=rng),
            InvertedResidual(w * 3, w * 3, stride=1, expand_ratio=4, rng=rng),
            InvertedResidual(w * 3, w * 4, stride=1, expand_ratio=4, rng=rng),
        )
        self.head = ConvBNReLU(w * 4, w * 8, kernel_size=1, relu6=True, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(w * 8, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.blocks(x)
        x = self.head(x)
        x = self.pool(x)
        return self.classifier(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad)
        grad = self.pool.backward(grad)
        grad = self.head.backward(grad)
        grad = self.blocks.backward(grad)
        return self.stem.backward(grad)


class ResNet50(Module):
    """Scaled ResNet50: four stages of bottleneck blocks with a stem convolution.

    The default configuration uses 2 bottlenecks per stage (8 total) instead of
    the original (3, 4, 6, 3) so CPU training fits the reproduction budget; the
    bottleneck structure, downsampling shortcuts, and BN placement are intact.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                 width: int = 8, blocks_per_stage: tuple[int, int, int, int] = (2, 2, 2, 2),
                 seed: int | None = 0) -> None:
        super().__init__()
        rng = make_rng(seed)
        del image_size
        self.stem = ConvBNReLU(in_channels, width, kernel_size=3, stride=1, rng=rng)
        stages: list[Module] = []
        in_ch = width
        for stage_idx, n_blocks in enumerate(blocks_per_stage):
            mid = width * (2 ** stage_idx)
            for block_idx in range(n_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                block = Bottleneck(in_ch, mid, stride=stride, rng=rng)
                stages.append(block)
                in_ch = block.out_channels
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(in_ch, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        x = self.stages(x)
        x = self.pool(x)
        return self.classifier(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad)
        grad = self.pool.backward(grad)
        grad = self.stages.backward(grad)
        return self.stem.backward(grad)


class SimpleCNN(Module):
    """Small two-conv CNN used by the fast tests and the quickstart example."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                 width: int = 8, seed: int | None = 0) -> None:
        super().__init__()
        rng = make_rng(seed)
        self.features = Sequential(
            Conv2d(in_channels, width, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width, width * 2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        flat = width * 2 * (image_size // 4) * (image_size // 4)
        self.classifier = Sequential(Flatten(), Linear(flat, num_classes, rng=rng))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad))


class MLP(Module):
    """Plain multi-layer perceptron on flattened inputs."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                 hidden: int = 64, seed: int | None = 0) -> None:
        super().__init__()
        rng = make_rng(seed)
        in_features = in_channels * image_size * image_size
        self.net = Sequential(
            Flatten(),
            Linear(in_features, hidden, rng=rng),
            ReLU(),
            Linear(hidden, num_classes, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.net.backward(grad)


_MODELS: dict[str, Callable[..., Module]] = {
    "alexnet": AlexNet,
    "mobilenetv2": MobileNetV2,
    "resnet50": ResNet50,
    "simplecnn": SimpleCNN,
    "mlp": MLP,
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_MODELS)


def build_model(name: str, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                seed: int | None = 0, **kwargs: object) -> Module:
    """Instantiate a model by registry name."""
    try:
        factory = _MODELS[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}") from exc
    return factory(num_classes=num_classes, in_channels=in_channels, image_size=image_size,
                   seed=seed, **kwargs)


def count_parameters(model: Module) -> int:
    """Total number of trainable parameter elements."""
    return sum(p.size for p in model.parameters())


def state_dict_nbytes(model: Module) -> int:
    """Total size of the state dict in bytes (parameters + buffers)."""
    return sum(arr.nbytes for arr in model.state_dict().values())


def estimate_flops(model: Module, input_shape: tuple[int, int, int]) -> int:
    """Estimate multiply-accumulate FLOPs of one forward pass on one sample.

    A probe batch of one sample is pushed through the model; every Conv2d and
    Linear layer records its output shape, from which the standard
    ``2 * fan_in * output_elements`` cost is accumulated.
    """
    was_training = model.training
    model.eval()
    probe = np.zeros((1, *input_shape), dtype=np.float32)
    model(probe)
    model.train(was_training)

    flops = 0
    for _, module in model.named_modules():
        if isinstance(module, Conv2d) and getattr(module, "_last_output_shape", None):
            _, _, h_out, w_out = module._last_output_shape
            fan_in = (module.in_channels // module.groups) * module.kernel_size ** 2
            flops += 2 * fan_in * module.out_channels * h_out * w_out
        elif isinstance(module, Linear) and getattr(module, "_last_output_shape", None):
            flops += 2 * module.in_features * module.out_features
    return int(flops)


def model_profile(model: Module, input_shape: tuple[int, int, int]) -> dict[str, float]:
    """Table III-style profile: parameter count, state size, FLOPs."""
    return {
        "parameters": count_parameters(model),
        "state_bytes": state_dict_nbytes(model),
        "flops": estimate_flops(model, input_shape),
    }

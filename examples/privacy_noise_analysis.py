"""Analyzing the compression error as a potential source of privacy noise.

Section VII-D of the paper observes that the error FedSZ's lossy stage
introduces resembles Laplacian noise — the distribution used by the classic
Laplace mechanism for differential privacy.  This example:

1. compresses a model's weights with SZ2 at several relative error bounds,
2. fits Laplace and Gaussian models to the reconstruction error and reports
   which fits better (Kolmogorov-Smirnov statistic) and how peaked the error
   histogram is,
3. computes the *hypothetical* epsilon the Laplace mechanism would associate
   with additive noise of the observed scale — with the same caveat the paper
   gives: compression error is not independent noise, so this is an
   equivalence in scale only, not a formal DP guarantee.

Run with::

    python examples/privacy_noise_analysis.py [--model resnet50]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.compressors import SZ2Compressor
from repro.nn import build_model
from repro.privacy import (
    analyze_error_distribution,
    compression_errors,
    epsilon_for_laplace_noise,
)

BOUNDS = (0.5, 0.1, 0.05, 0.01)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="alexnet")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    model = build_model(args.model, num_classes=10, in_channels=3, image_size=32)
    state = model.state_dict()
    weights = np.concatenate([v.ravel() for k, v in state.items()
                              if "weight" in k and v.size > 1024])
    # Freshly initialized weights are uniformly distributed; trained weights
    # concentrate around zero with heavy tails (Figure 3 of the paper), and
    # that peaked shape is what the compression error inherits.  Shape the
    # initialization accordingly so the demo reflects a trained model.
    rng = np.random.default_rng(0)
    weights = (weights * np.abs(rng.standard_normal(weights.shape)) ** 1.5).astype(np.float32)
    sensitivity = float(np.max(np.abs(weights)))
    print(f"{args.model}: {weights.size:,} lossy-compressible weights, "
          f"L1 sensitivity proxy {sensitivity:.3f}\n")

    header = f"{'REL bound':>9}  {'error std':>10}  {'Laplace b':>10}  {'kurtosis':>8}  " \
             f"{'Laplace fits better?':>21}  {'equiv. epsilon':>14}"
    print(header)
    print("-" * len(header))
    for bound in BOUNDS:
        errors = compression_errors(SZ2Compressor(error_bound=bound), weights)
        fit = analyze_error_distribution(errors)
        epsilon = epsilon_for_laplace_noise(sensitivity, fit.laplace_scale)
        print(f"{bound:>9.2f}  {fit.std:>10.5f}  {fit.laplace_scale:>10.5f}  "
              f"{fit.excess_kurtosis:>8.2f}  {'yes' if fit.laplace_like else 'no':>21}  "
              f"{epsilon:>14.1f}")

    print("\nInterpretation: at large bounds the error inherits the peaked, heavy-tailed")
    print("shape of the weights themselves (Laplace-like); at tight bounds it tends")
    print("toward uniform quantization noise.  The 'equiv. epsilon' column is what the")
    print("Laplace mechanism would charge for additive noise of the same scale - a")
    print("starting point for the DP analysis the paper leaves to future work, not a")
    print("formal privacy guarantee.")


if __name__ == "__main__":
    main()

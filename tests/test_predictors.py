"""Tests for the prediction stages used by SZ2/SZ3."""

import numpy as np
import pytest

from repro.compressors.predictors import (
    InterpolationPredictor,
    block_mean_predictor,
    block_pad,
    block_regression_predictor,
    predictions_from_regression,
)


class TestBlockPad:
    def test_exact_multiple(self):
        blocks, n = block_pad(np.arange(8, dtype=float), 4)
        assert blocks.shape == (2, 4)
        assert n == 8

    def test_padding_with_edge_value(self):
        blocks, n = block_pad(np.array([1.0, 2.0, 3.0]), 4)
        assert n == 3
        assert blocks.shape == (1, 4)
        assert blocks[0, 3] == 3.0

    def test_empty_input(self):
        blocks, n = block_pad(np.array([]), 4)
        assert n == 0
        assert blocks.shape == (0, 4)


class TestBlockPredictors:
    def test_mean_predictor_constant_block_exact(self):
        blocks = np.full((3, 8), 2.5)
        pred, coef = block_mean_predictor(blocks)
        np.testing.assert_allclose(pred, blocks)
        np.testing.assert_allclose(coef.ravel(), [2.5, 2.5, 2.5])

    def test_regression_predictor_linear_block_exact(self):
        idx = np.arange(16, dtype=float)
        blocks = np.stack([2.0 + 0.5 * idx, -1.0 - 0.25 * idx])
        pred, coef = block_regression_predictor(blocks)
        np.testing.assert_allclose(pred, blocks, atol=1e-10)
        np.testing.assert_allclose(coef[0], [2.0, 0.5], atol=1e-10)
        np.testing.assert_allclose(coef[1], [-1.0, -0.25], atol=1e-10)

    def test_regression_beats_mean_on_trend(self):
        idx = np.arange(32, dtype=float)
        blocks = (3.0 * idx)[None, :]
        mean_pred, _ = block_mean_predictor(blocks)
        reg_pred, _ = block_regression_predictor(blocks)
        assert ((blocks - reg_pred) ** 2).sum() < ((blocks - mean_pred) ** 2).sum()

    def test_predictions_from_regression_matches(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(size=(5, 12))
        _, coef = block_regression_predictor(blocks)
        rebuilt = predictions_from_regression(coef, 12)
        direct, _ = block_regression_predictor(blocks)
        np.testing.assert_allclose(rebuilt, direct, atol=1e-10)

    def test_single_column_block(self):
        blocks = np.array([[5.0], [7.0]])
        pred, _ = block_regression_predictor(blocks)
        np.testing.assert_allclose(pred, blocks)


class TestInterpolationPredictor:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 17, 100, 1023, 1024, 1025])
    def test_every_index_covered_exactly_once(self, n):
        predictor = InterpolationPredictor(n)
        seen = set(predictor.anchor_indices().tolist())
        for new_idx, left_idx, right_idx in predictor.levels():
            for i in new_idx.tolist():
                assert i not in seen, f"index {i} predicted twice (n={n})"
                seen.add(i)
            # parents must already be reconstructed
            assert set(left_idx.tolist()) <= seen - set(new_idx.tolist()) | set(left_idx.tolist())
            for left, right, new in zip(left_idx.tolist(), right_idx.tolist(), new_idx.tolist()):
                assert left in seen and left != new
                assert right in seen and (right != new or right == left)
        assert seen == set(range(n))

    def test_parents_reconstructed_before_use(self):
        n = 37
        predictor = InterpolationPredictor(n)
        reconstructed = set(predictor.anchor_indices().tolist())
        for new_idx, left_idx, right_idx in predictor.levels():
            for left, right in zip(left_idx.tolist(), right_idx.tolist()):
                assert left in reconstructed
                assert right in reconstructed
            reconstructed.update(new_idx.tolist())

    def test_linear_data_predicted_exactly(self):
        n = 64
        data = np.linspace(0.0, 10.0, n)
        predictor = InterpolationPredictor(n)
        values = np.zeros(n)
        anchors = predictor.anchor_indices()
        values[anchors] = data[anchors]
        for new_idx, left_idx, right_idx in predictor.levels():
            pred = InterpolationPredictor.predict(values, new_idx, left_idx, right_idx)
            interior = right_idx != left_idx
            np.testing.assert_allclose(pred[interior], data[new_idx][interior], atol=1e-12)
            values[new_idx] = data[new_idx]

    def test_zero_length(self):
        predictor = InterpolationPredictor(0)
        assert predictor.anchor_indices().size == 0
        assert list(predictor.levels()) == []

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            InterpolationPredictor(-1)

"""Gradient and behaviour tests for the neural-network layers.

Analytic backward passes are verified against central-difference numerical
gradients on tiny tensors.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)
from repro.nn.module import Sequential


def numerical_grad_input(layer, x, grad_out, eps=1e-4):
    """Central-difference dL/dx where L = sum(forward(x) * grad_out)."""
    x = x.astype(np.float64)
    num = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = float((layer.forward(x) * grad_out).sum())
        x[idx] = orig - eps
        minus = float((layer.forward(x) * grad_out).sum())
        x[idx] = orig
        num[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return num


def numerical_grad_param(layer, param, x, grad_out, eps=1e-4):
    """Central-difference dL/dparam for the same scalar loss."""
    num = np.zeros_like(param.data, dtype=np.float64)
    it = np.nditer(param.data, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = float(param.data[idx])
        param.data[idx] = orig + eps
        plus = float((layer.forward(x) * grad_out).sum())
        param.data[idx] = orig - eps
        minus = float((layer.forward(x) * grad_out).sum())
        param.data[idx] = orig
        num[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return num


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(6, 4, rng=rng)
        out = layer(rng.standard_normal((5, 6)))
        assert out.shape == (5, 4)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.standard_normal((2, 4))
        grad_out = rng.standard_normal((2, 3))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numerical_grad_input(layer, x.copy(), grad_out)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-5)

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.standard_normal((2, 4))
        grad_out = rng.standard_normal((2, 3))
        layer.forward(x)
        layer.zero_grad()
        layer.backward(grad_out)
        numeric = numerical_grad_param(layer, layer.weight, x, grad_out)
        np.testing.assert_allclose(layer.weight.grad, numeric, rtol=1e-3, atol=1e-4)

    def test_bias_gradient(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        grad_out = rng.standard_normal((5, 3))
        layer.forward(x)
        layer.zero_grad()
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.bias.grad, grad_out.sum(axis=0), rtol=1e-5)

    def test_no_bias_option(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1


class TestConv2d:
    def test_forward_shape_padding_stride(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 8, 4, 4)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = rng.standard_normal((1, 2, 5, 5))
        grad_out = rng.standard_normal((1, 3, 5, 5))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numerical_grad_input(layer, x.copy(), grad_out)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-4)

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Conv2d(2, 2, 3, padding=1, rng=rng)
        x = rng.standard_normal((1, 2, 4, 4))
        grad_out = rng.standard_normal((1, 2, 4, 4))
        layer.forward(x)
        layer.zero_grad()
        layer.backward(grad_out)
        numeric = numerical_grad_param(layer, layer.weight, x, grad_out)
        np.testing.assert_allclose(layer.weight.grad, numeric, rtol=1e-3, atol=1e-4)

    def test_depthwise_forward_shape(self, rng):
        layer = Conv2d(4, 4, 3, padding=1, groups=4, rng=rng)
        out = layer(rng.standard_normal((2, 4, 6, 6)))
        assert out.shape == (2, 4, 6, 6)

    def test_depthwise_input_gradient(self, rng):
        layer = Conv2d(2, 2, 3, padding=1, groups=2, rng=rng)
        x = rng.standard_normal((1, 2, 4, 4))
        grad_out = rng.standard_normal((1, 2, 4, 4))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numerical_grad_input(layer, x.copy(), grad_out)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-4)

    def test_depthwise_matches_dense_when_single_channel(self, rng):
        dense = Conv2d(1, 1, 3, padding=1, rng=np.random.default_rng(0))
        depth = Conv2d(1, 1, 3, padding=1, groups=1, rng=np.random.default_rng(0))
        depth.weight.data = dense.weight.data.copy()
        depth.bias.data = dense.bias.data.copy()
        x = rng.standard_normal((2, 1, 5, 5))
        np.testing.assert_allclose(dense(x), depth(x), rtol=1e-5)

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            Conv2d(4, 8, 3, groups=2)

    def test_stride_without_padding(self, rng):
        layer = Conv2d(1, 2, 3, stride=2, padding=0, rng=rng)
        out = layer(rng.standard_normal((1, 1, 7, 7)))
        assert out.shape == (1, 2, 3, 3)


class TestBatchNorm2d:
    def test_training_normalizes_batch(self, rng):
        layer = BatchNorm2d(3)
        x = rng.standard_normal((8, 3, 4, 4)) * 5 + 2
        out = layer(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self, rng):
        layer = BatchNorm2d(2, momentum=0.5)
        x = rng.standard_normal((16, 2, 3, 3)) + 4.0
        layer(x)
        assert np.all(layer._buffers["running_mean"] > 1.0)
        assert layer._buffers["num_batches_tracked"][0] == 1

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2d(2)
        x = rng.standard_normal((8, 2, 4, 4))
        layer(x)
        layer.train(False)
        y1 = layer(x[:2])
        y2 = layer(x[:2])
        np.testing.assert_allclose(y1, y2)

    def test_input_gradient_matches_numerical(self, rng):
        layer = BatchNorm2d(2)
        x = rng.standard_normal((3, 2, 2, 2))
        grad_out = rng.standard_normal((3, 2, 2, 2))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numerical_grad_input(layer, x.copy(), grad_out, eps=1e-5)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-4)

    def test_state_dict_contains_buffers(self):
        layer = BatchNorm2d(4)
        state = layer.state_dict()
        assert {"weight", "bias", "running_mean", "running_var", "num_batches_tracked"} <= set(state)


class TestActivationsAndPooling:
    def test_relu_forward_backward(self, rng):
        layer = ReLU()
        x = np.array([[-1.0, 2.0, 0.0]])
        out = layer(x)
        np.testing.assert_array_equal(out, [[0.0, 2.0, 0.0]])
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 0.0]])

    def test_relu6_clips(self):
        layer = ReLU6()
        x = np.array([[-1.0, 3.0, 10.0]])
        np.testing.assert_array_equal(layer(x), [[0.0, 3.0, 6.0]])
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 0.0]])

    def test_maxpool_forward(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4
        assert grad[0, 0, 1, 1] == 1 and grad[0, 0, 0, 0] == 0

    def test_maxpool_ragged_input(self, rng):
        layer = MaxPool2d(2)
        x = rng.standard_normal((1, 1, 5, 5))
        out = layer(x)
        assert out.shape == (1, 1, 2, 2)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_avgpool_matches_mean(self, rng):
        layer = AvgPool2d(2)
        x = rng.standard_normal((2, 3, 4, 4))
        out = layer(x)
        np.testing.assert_allclose(out[0, 0, 0, 0], x[0, 0, :2, :2].mean())

    def test_avgpool_gradient_numerical(self, rng):
        layer = AvgPool2d(2)
        x = rng.standard_normal((1, 1, 4, 4))
        grad_out = rng.standard_normal((1, 1, 2, 2))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numerical_grad_input(layer, x.copy(), grad_out)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_global_avgpool(self, rng):
        layer = GlobalAvgPool2d()
        x = rng.standard_normal((2, 3, 5, 5))
        out = layer(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
        grad = layer.backward(np.ones((2, 3)))
        assert grad.shape == x.shape
        np.testing.assert_allclose(grad, 1.0 / 25)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((4, 2, 3, 3))
        out = layer(x)
        assert out.shape == (4, 18)
        assert layer.backward(out).shape == x.shape


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.train(False)
        x = rng.standard_normal((10, 10))
        np.testing.assert_array_equal(layer(x), x)

    def test_train_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000,))
        out = layer(x)
        zero_fraction = float((out == 0).mean())
        assert 0.4 < zero_fraction < 0.6
        assert np.isclose(out[out != 0][0], 2.0)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((100,))
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequentialChaining:
    def test_forward_backward_shapes(self, rng):
        net = Sequential(Conv2d(1, 2, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2),
                         Flatten(), Linear(2 * 2 * 2, 3, rng=rng))
        x = rng.standard_normal((4, 1, 4, 4))
        out = net(x)
        assert out.shape == (4, 3)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_sequential_gradient_numerical(self, rng):
        net = Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        x = rng.standard_normal((2, 3))
        grad_out = rng.standard_normal((2, 2))
        net.forward(x)
        analytic = net.backward(grad_out)
        numeric = numerical_grad_input(net, x.copy(), grad_out)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-4)

"""Tests for the concurrent round engine: parallelism, sampling, dropout,
stragglers, heterogeneous links, and the determinism guarantees that let the
parallel path stand in for the sequential reference."""

import numpy as np
import pytest

from repro.core import NetworkModel, make_client_networks, round_communication_time
from repro.core.config import FedSZConfig
from repro.fl import (
    FederatedSimulation,
    FedSZUpdateCodec,
    RawUpdateCodec,
    fedavg_aggregate,
    map_parallel,
    train_clients_parallel,
)
from repro.utils.parallel import resolve_worker_count
from repro.nn import build_model


def _factory():
    return build_model("simplecnn", num_classes=10, in_channels=3, image_size=16, seed=0)


def _make_sim(tiny_split, **kwargs):
    train, test = tiny_split
    kwargs.setdefault("codec", RawUpdateCodec())
    kwargs.setdefault("lr", 0.1)
    kwargs.setdefault("seed", 5)
    return FederatedSimulation(_factory, train, test, **kwargs)


class CountingCodec(RawUpdateCodec):
    """Raw codec that counts encode/decode invocations."""

    def __init__(self):
        self.encodes = 0
        self.decodes = 0

    def encode(self, state):
        self.encodes += 1
        return super().encode(state)

    def decode(self, payload):
        self.decodes += 1
        return super().decode(payload)


class TestDeterminism:
    def test_parallel_workers_match_sequential_bit_for_bit(self, tiny_split):
        """Satellite requirement: max_workers=1 vs 4 — identical accuracies
        and byte counts for a fixed seed."""
        sequential = _make_sim(tiny_split, n_clients=4, max_workers=1).run(3)
        parallel = _make_sim(tiny_split, n_clients=4, max_workers=4).run(3)
        assert parallel.accuracies == sequential.accuracies
        for seq_round, par_round in zip(sequential.rounds, parallel.rounds):
            assert par_round.transmitted_bytes == seq_round.transmitted_bytes
            assert par_round.uncompressed_bytes == seq_round.uncompressed_bytes
            assert par_round.communication_seconds == seq_round.communication_seconds
            assert par_round.client_losses == seq_round.client_losses
            assert par_round.participants == seq_round.participants

    def test_parallel_workers_match_with_fedsz_codec(self, tiny_split):
        codec = FedSZUpdateCodec(FedSZConfig(error_bound=1e-2))
        sequential = _make_sim(tiny_split, n_clients=3, max_workers=1, codec=codec).run(2)
        codec2 = FedSZUpdateCodec(FedSZConfig(error_bound=1e-2))
        parallel = _make_sim(tiny_split, n_clients=3, max_workers=3, codec=codec2).run(2)
        assert parallel.accuracies == sequential.accuracies
        assert [r.transmitted_bytes for r in parallel.rounds] == \
            [r.transmitted_bytes for r in sequential.rounds]

    def test_scenario_draw_is_seeded_and_worker_independent(self, tiny_split):
        kwargs = dict(n_clients=4, participation=0.5, dropout_prob=0.3, straggler_prob=0.4)
        first = _make_sim(tiny_split, max_workers=1, **kwargs)
        second = _make_sim(tiny_split, max_workers=4, **kwargs)
        for round_index in range(6):
            assert first.plan_round(round_index) == second.plan_round(round_index)

    def test_different_seeds_draw_different_scenarios(self, tiny_split):
        a = _make_sim(tiny_split, n_clients=6, participation=0.5, seed=1)
        b = _make_sim(tiny_split, n_clients=6, participation=0.5, seed=2)
        plans_a = [a.plan_round(i)[0] for i in range(8)]
        plans_b = [b.plan_round(i)[0] for i in range(8)]
        assert plans_a != plans_b


class TestClientSampling:
    def test_fraction_participation(self, tiny_split):
        sim = _make_sim(tiny_split, n_clients=4, participation=0.5)
        record = sim.run_round(0)
        assert len(record.participants) == 2
        assert len(record.client_losses) == 2
        assert all(0 <= i < 4 for i in record.participants)

    def test_count_participation(self, tiny_split):
        sim = _make_sim(tiny_split, n_clients=4, participation=3)
        record = sim.run_round(0)
        assert len(record.participants) == 3

    def test_count_of_one_samples_a_single_client(self, tiny_split):
        # int 1 is a count, not the 1.0 full-participation fraction
        sim = _make_sim(tiny_split, n_clients=4, participation=1)
        plans = [sim.plan_round(i)[0] for i in range(6)]
        assert all(len(p) == 1 for p in plans)
        assert len({p[0] for p in plans}) > 1  # rotates across the fleet

    def test_codec_runs_only_for_sampled_clients(self, tiny_split):
        codec = CountingCodec()
        sim = _make_sim(tiny_split, n_clients=4, participation=0.5, codec=codec)
        sim.run(2)
        assert codec.encodes == 4  # 2 clients x 2 rounds
        assert codec.decodes == 4

    def test_full_participation_keeps_all_clients(self, tiny_split):
        sim = _make_sim(tiny_split, n_clients=3)
        record = sim.run_round(0)
        assert record.participants == [0, 1, 2]
        assert record.dropped_clients == [] and record.straggler_clients == []


class TestDropoutAndStragglers:
    def test_full_dropout_round_keeps_global_model(self, tiny_split):
        sim = _make_sim(tiny_split, n_clients=2, dropout_prob=1.0)
        before = {k: v.copy() for k, v in sim.server.global_state().items()}
        record = sim.run_round(0)
        assert record.participants == []
        assert sorted(record.dropped_clients) == [0, 1]
        assert record.transmitted_bytes == 0
        assert record.communication_seconds == 0.0
        after = sim.server.global_state()
        for key in before:
            np.testing.assert_array_equal(after[key], before[key])

    def test_dropped_clients_contribute_no_bytes(self, tiny_split):
        full = _make_sim(tiny_split, n_clients=4).run_round(0)
        dropped = _make_sim(tiny_split, n_clients=4, dropout_prob=0.5).run_round(0)
        assert 0 < len(dropped.participants) < 4
        per_client = full.transmitted_bytes // 4
        assert dropped.transmitted_bytes == per_client * len(dropped.participants)

    def test_stragglers_inflate_communication_time(self, tiny_split):
        baseline = _make_sim(tiny_split, n_clients=2).run_round(0)
        slowed = _make_sim(tiny_split, n_clients=2, straggler_prob=1.0,
                           straggler_slowdown=5.0).run_round(0)
        assert slowed.straggler_clients == [0, 1]
        assert slowed.communication_seconds == pytest.approx(5.0 * baseline.communication_seconds)
        assert slowed.accuracy == baseline.accuracy  # numerics untouched


class TestHeterogeneousNetworks:
    def test_serial_uplink_sums_parallel_takes_max(self, tiny_split):
        networks = [NetworkModel(bandwidth_mbps=10.0), NetworkModel(bandwidth_mbps=100.0)]
        serial = _make_sim(tiny_split, n_clients=2, networks=networks, uplink="serial").run_round(0)
        parallel = _make_sim(tiny_split, n_clients=2, networks=networks,
                             uplink="parallel").run_round(0)
        per_client = serial.transmitted_bytes // 2
        expected = [net.transfer_time(per_client) for net in networks]
        assert serial.communication_seconds == pytest.approx(sum(expected))
        assert parallel.communication_seconds == pytest.approx(max(expected))

    def test_round_communication_time_helper(self):
        assert round_communication_time([1.0, 2.0, 3.0], "serial") == 6.0
        assert round_communication_time([1.0, 2.0, 3.0], "parallel") == 3.0
        assert round_communication_time([], "parallel") == 0.0
        with pytest.raises(ValueError, match="uplink"):
            round_communication_time([1.0], "duplex")

    def test_make_client_networks_spread_and_seeding(self):
        base = NetworkModel(bandwidth_mbps=100.0, latency_s=0.01)
        fleet = make_client_networks(8, base, bandwidth_spread=4.0,
                                     latency_spread_s=0.05, seed=3)
        assert len(fleet) == 8
        bandwidths = [n.bandwidth_mbps for n in fleet]
        assert all(25.0 <= b <= 400.0 for b in bandwidths)
        assert len(set(bandwidths)) > 1
        assert all(0.01 <= n.latency_s <= 0.06 for n in fleet)
        again = make_client_networks(8, base, bandwidth_spread=4.0,
                                     latency_spread_s=0.05, seed=3)
        assert bandwidths == [n.bandwidth_mbps for n in again]

    def test_unit_spread_clones_base(self):
        base = NetworkModel(bandwidth_mbps=42.0, latency_s=0.5)
        fleet = make_client_networks(3, base)
        assert all(n.bandwidth_mbps == 42.0 and n.latency_s == 0.5 for n in fleet)


class TestComputeFactors:
    def test_compute_factor_scales_reported_train_time(self, tiny_split):
        sim = _make_sim(tiny_split, n_clients=2, compute_factors=[1.0, 50.0])
        record = sim.run_round(0)
        assert record.mean_train_seconds > 0
        assert sim.clients[1].compute_factor == 50.0

    def test_invalid_compute_factor_rejected(self, tiny_split):
        train, _ = tiny_split
        from repro.fl import FLClient
        with pytest.raises(ValueError, match="compute_factor"):
            FLClient(0, _factory(), train, compute_factor=0.0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"participation": 0.0},
        {"participation": 1.5},
        {"participation": 0},
        {"participation": 9},
        {"dropout_prob": -0.1},
        {"straggler_prob": 1.5},
        {"straggler_slowdown": 0.5},
        {"uplink": "duplex"},
        {"max_workers": 0},
        {"networks": [NetworkModel()]},
        {"compute_factors": [1.0]},
    ])
    def test_bad_engine_parameters_rejected(self, tiny_split, kwargs):
        with pytest.raises(ValueError):
            _make_sim(tiny_split, n_clients=4, **kwargs)


class TestParallelHelpers:
    def test_resolve_worker_count(self):
        assert resolve_worker_count(1, 10) == 1
        assert resolve_worker_count(8, 3) == 3
        assert resolve_worker_count(None, 2) == 2
        assert resolve_worker_count(4, 0) == 1
        with pytest.raises(ValueError):
            resolve_worker_count(0, 4)

    def test_map_parallel_matches_sequential(self):
        items = list(range(23))
        assert map_parallel(lambda x: x * x, items, max_workers=4) == [x * x for x in items]

    def test_map_parallel_propagates_exceptions(self):
        def boom(x):
            raise RuntimeError("client failed")
        with pytest.raises(RuntimeError, match="client failed"):
            map_parallel(boom, [1, 2, 3], max_workers=2)

    def test_train_clients_parallel_matches_sequential(self, tiny_split):
        seq = _make_sim(tiny_split, n_clients=3)
        par = _make_sim(tiny_split, n_clients=3)
        state = seq.server.global_state()
        seq_updates = train_clients_parallel(seq.clients, state, max_workers=1)
        par_updates = train_clients_parallel(par.clients, state, max_workers=3)
        for a, b in zip(seq_updates, par_updates):
            assert a.client_id == b.client_id
            assert a.train_loss == b.train_loss
            for key in a.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])


class TestServerPartialAggregation:
    def test_empty_aggregate_with_allow_empty_keeps_global_state(self, tiny_split):
        sim = _make_sim(tiny_split, n_clients=2)
        before = {k: v.copy() for k, v in sim.server.global_state().items()}
        out = sim.server.aggregate([], allow_empty=True)
        for key in before:
            np.testing.assert_array_equal(out[key], before[key])
            np.testing.assert_array_equal(sim.server.global_state()[key], before[key])

    def test_empty_aggregate_without_allow_empty_raises(self, tiny_split):
        sim = _make_sim(tiny_split, n_clients=2)
        with pytest.raises(ValueError, match="at least one"):
            sim.server.aggregate([])

    def test_empty_fedavg_aggregate_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            fedavg_aggregate([])

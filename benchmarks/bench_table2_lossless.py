"""Table II: lossless compressor comparison for AlexNet metadata.

Compresses the lossless partition of an AlexNet state dict (biases, small
weights — the paper's "metadata and non-weight parameters") with every
registered lossless codec and reports runtime, throughput, and ratio.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import save_results, trained_like_state
from repro.compressors.lossless import available_lossless, get_lossless
from repro.core import FedSZConfig, partition_state_dict
from repro.metrics import ExperimentRecord, Table
from repro.utils.serialization import pack_arrays

CODECS = ("blosclz", "gzip", "xz", "zlib", "zstd", "bzip2", "shuffle-rle")


def bench_table2_lossless(benchmark):
    # AlexNet has almost no non-weight state at the reproduction's scale, so the
    # metadata workload concatenates the lossless partitions of all three
    # models (biases + BatchNorm statistics), matching the paper's "metadata
    # and non-weight parameters" payload character.
    metadata: dict = {}
    for model_name in ("alexnet", "resnet50", "mobilenetv2"):
        state = trained_like_state(model_name)
        partition = partition_state_dict(state, FedSZConfig(threshold=1024))
        for key, value in partition.lossless.items():
            metadata[f"{model_name}.{key}"] = value
    metadata_blob = pack_arrays(metadata)

    def run():
        rows = []
        for name in CODECS:
            codec = get_lossless(name)
            start = time.perf_counter()
            payload = codec.compress(metadata_blob)
            compress_s = time.perf_counter() - start
            start = time.perf_counter()
            restored = codec.decompress(payload)
            decompress_s = time.perf_counter() - start
            assert restored == metadata_blob, f"{name} is not lossless"
            rows.append({
                "codec": name,
                "runtime_s": compress_s,
                "decompress_s": decompress_s,
                "throughput_mbps": len(metadata_blob) / 1e6 / max(compress_s, 1e-9),
                "ratio": len(metadata_blob) / len(payload),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Table II - lossless codec comparison on AlexNet metadata "
                  f"({len(metadata_blob)} bytes)",
                  ["codec", "runtime", "throughput MB/s", "ratio"])
    record = ExperimentRecord("table2", "lossless codec comparison on metadata")
    for row in sorted(rows, key=lambda r: r["runtime_s"]):
        table.add_row(row["codec"], f"{row['runtime_s']*1e3:.2f}ms",
                      f"{row['throughput_mbps']:.1f}", f"{row['ratio']:.3f}x")
        record.add(**row)
    save_results("table2_lossless", table, record)

    by_name = {r["codec"]: r for r in rows}
    # Paper findings: blosc-lz is much faster than gzip/xz with a competitive
    # ratio (metadata is low-compressibility float data), and xz trades the
    # worst runtime for a best-in-class ratio.
    assert by_name["blosclz"]["runtime_s"] < by_name["gzip"]["runtime_s"]
    assert by_name["blosclz"]["runtime_s"] < by_name["xz"]["runtime_s"]
    assert by_name["xz"]["runtime_s"] > by_name["zstd"]["runtime_s"]
    assert by_name["blosclz"]["ratio"] >= by_name["zstd"]["ratio"] * 0.8
    # every paper codec achieves some reduction on the float metadata; the
    # from-scratch run-length codec is listed for illustration only (it expands
    # incompressible float noise, which the table makes visible)
    for name in ("blosclz", "gzip", "xz", "zlib", "zstd", "bzip2"):
        assert by_name[name]["ratio"] > 1.0

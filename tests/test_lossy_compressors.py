"""Cross-cutting tests applied to all four error-bounded lossy compressors."""

import numpy as np
import pytest

from repro.compressors import (
    ErrorBound,
    ErrorBoundMode,
    SZ2Compressor,
    SZ3Compressor,
    SZxCompressor,
    ZFPCompressor,
    available_lossy,
    get_lossy,
    register_lossy,
    roundtrip,
)

#: compressors that give a hard per-element guarantee (ZFP fixed-precision does not)
BOUNDED = [SZ2Compressor, SZ3Compressor, SZxCompressor]
ALL = BOUNDED + [ZFPCompressor]


def _rel_abs_bound(data: np.ndarray, rel: float) -> float:
    return rel * float(np.max(data) - np.min(data))


@pytest.mark.parametrize("cls", ALL)
class TestRoundtripShapes:
    def test_preserves_shape_and_dtype(self, cls, weight_like):
        comp = cls(error_bound=1e-2)
        data = weight_like[:4096].reshape(64, 64)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == data.shape
        assert recon.dtype == data.dtype

    def test_float64_input(self, cls, rng):
        data = rng.normal(0, 1, 2000).astype(np.float64)
        comp = cls(error_bound=1e-3)
        recon = comp.decompress(comp.compress(data))
        assert recon.dtype == np.float64
        assert recon.shape == data.shape

    def test_empty_array(self, cls):
        comp = cls(error_bound=1e-2)
        recon = comp.decompress(comp.compress(np.zeros(0, dtype=np.float32)))
        assert recon.size == 0

    def test_single_element(self, cls):
        comp = cls(error_bound=1e-2)
        data = np.array([0.123], dtype=np.float32)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == (1,)
        assert abs(float(recon[0]) - 0.123) < 0.05

    def test_constant_array(self, cls):
        comp = cls(error_bound=1e-2)
        data = np.full(1000, 0.5, dtype=np.float32)
        recon = comp.decompress(comp.compress(data))
        np.testing.assert_allclose(recon, data, atol=1e-3)

    def test_small_odd_lengths(self, cls, rng):
        for n in (1, 2, 3, 5, 7, 13, 129, 255):
            data = rng.normal(0, 0.05, n).astype(np.float32)
            comp = cls(error_bound=1e-2)
            recon = comp.decompress(comp.compress(data))
            assert recon.shape == data.shape


@pytest.mark.parametrize("cls", BOUNDED)
@pytest.mark.parametrize("rel_bound", [1e-1, 1e-2, 1e-3, 1e-4])
class TestErrorBoundGuarantee:
    def test_relative_bound_respected_on_weights(self, cls, rel_bound, weight_like):
        comp = cls(error_bound=rel_bound, mode=ErrorBoundMode.REL)
        recon = comp.decompress(comp.compress(weight_like))
        abs_bound = _rel_abs_bound(weight_like, rel_bound)
        max_err = np.max(np.abs(recon.astype(np.float64) - weight_like.astype(np.float64)))
        assert max_err <= abs_bound * (1 + 1e-6) + 1e-9

    def test_relative_bound_respected_on_smooth_data(self, cls, rel_bound, smooth_signal):
        comp = cls(error_bound=rel_bound, mode=ErrorBoundMode.REL)
        recon = comp.decompress(comp.compress(smooth_signal))
        abs_bound = _rel_abs_bound(smooth_signal, rel_bound)
        max_err = np.max(np.abs(recon.astype(np.float64) - smooth_signal.astype(np.float64)))
        assert max_err <= abs_bound * (1 + 1e-6) + 1e-9


@pytest.mark.parametrize("cls", BOUNDED)
class TestAbsoluteMode:
    def test_absolute_bound_respected(self, cls, rng):
        data = rng.normal(0, 10, 5000)
        comp = cls(error_bound=0.05, mode=ErrorBoundMode.ABS)
        recon = comp.decompress(comp.compress(data))
        assert np.max(np.abs(recon - data)) <= 0.05 * (1 + 1e-6) + 1e-9

    def test_tighter_bound_larger_payload(self, cls, weight_like):
        loose = cls(error_bound=1e-1).compress(weight_like)
        tight = cls(error_bound=1e-4).compress(weight_like)
        assert len(tight) > len(loose)


@pytest.mark.parametrize("cls", ALL)
class TestCompressionEffectiveness:
    def test_compresses_weight_data_at_1e2(self, cls, weight_like):
        comp = cls(error_bound=1e-2)
        payload = comp.compress(weight_like)
        assert len(payload) < weight_like.nbytes  # ratio > 1

    def test_smooth_data_compresses_better_than_random(self, cls, smooth_signal, rng):
        noise = rng.normal(0, 1, smooth_signal.size).astype(np.float32)
        comp = cls(error_bound=1e-3)
        smooth_payload = comp.compress(smooth_signal)
        noise_payload = comp.compress(noise)
        smooth_ratio = smooth_signal.nbytes / len(smooth_payload)
        noise_ratio = noise.nbytes / len(noise_payload)
        assert smooth_ratio >= noise_ratio * 0.9


class TestPaperQualitativeFindings:
    """Reproduce the relative ranking the paper reports in Table I."""

    def test_sz2_ratio_beats_zfp_on_weights(self, weight_like):
        _, sz2 = roundtrip(SZ2Compressor(error_bound=1e-2), weight_like)
        _, zfp = roundtrip(ZFPCompressor(error_bound=1e-2), weight_like)
        assert sz2.ratio > zfp.ratio

    def test_sz2_and_sz3_ratios_similar(self, weight_like):
        _, sz2 = roundtrip(SZ2Compressor(error_bound=1e-2), weight_like)
        _, sz3 = roundtrip(SZ3Compressor(error_bound=1e-2), weight_like)
        assert abs(sz2.ratio - sz3.ratio) / sz2.ratio < 0.5

    def test_szx_fastest_compressor(self, weight_like):
        _, szx = roundtrip(SZxCompressor(error_bound=1e-2), weight_like)
        _, sz2 = roundtrip(SZ2Compressor(error_bound=1e-2), weight_like)
        assert szx.compress_seconds < sz2.compress_seconds

    def test_ratio_grows_with_error_bound(self, weight_like):
        ratios = []
        for bound in (1e-4, 1e-3, 1e-2, 1e-1):
            _, stats = roundtrip(SZ2Compressor(error_bound=bound), weight_like)
            ratios.append(stats.ratio)
        assert ratios == sorted(ratios)


class TestConfigurationAndRegistry:
    def test_available_lossy_names(self):
        assert set(available_lossy()) >= {"sz2", "sz3", "szx", "zfp"}

    @pytest.mark.parametrize("name", ["sz2", "sz3", "szx", "zfp"])
    def test_get_lossy_constructs(self, name):
        comp = get_lossy(name, error_bound=1e-3)
        assert comp.error_bound.value == 1e-3

    def test_get_lossy_unknown(self):
        with pytest.raises(ValueError, match="unknown lossy compressor"):
            get_lossy("fpzip")

    def test_register_lossy_and_overwrite_guard(self):
        register_lossy("sz2_alias", SZ2Compressor, overwrite=True)
        assert "sz2_alias" in available_lossy()
        with pytest.raises(ValueError):
            register_lossy("sz2_alias", SZ2Compressor)

    def test_error_bound_validation(self):
        with pytest.raises(ValueError):
            ErrorBound(0.0)
        with pytest.raises(ValueError):
            ErrorBound(-1e-3)

    def test_with_error_bound_returns_copy(self):
        comp = SZ2Compressor(error_bound=1e-2)
        tighter = comp.with_error_bound(1e-4)
        assert tighter.error_bound.value == 1e-4
        assert comp.error_bound.value == 1e-2
        assert isinstance(tighter, SZ2Compressor)

    def test_rel_mode_is_default(self):
        comp = SZ2Compressor(error_bound=1e-2)
        assert comp.error_bound.mode is ErrorBoundMode.REL

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            SZ2Compressor(block_size=1)
        with pytest.raises(ValueError):
            SZxCompressor(block_size=0)

    def test_zfp_precision_validation(self):
        with pytest.raises(ValueError):
            ZFPCompressor(precision=1)
        with pytest.raises(ValueError):
            ZFPCompressor(precision=40)

    def test_zfp_explicit_precision_roundtrip(self, weight_like):
        comp = ZFPCompressor(precision=16)
        recon = comp.decompress(comp.compress(weight_like))
        assert np.max(np.abs(recon - weight_like)) < 0.01


class TestRoundtripHelper:
    def test_stats_fields(self, weight_like):
        recon, stats = roundtrip(SZ2Compressor(error_bound=1e-2), weight_like)
        assert stats.original_bytes == weight_like.nbytes
        assert stats.compressed_bytes > 0
        assert stats.ratio > 1
        assert stats.compress_seconds > 0
        assert stats.decompress_seconds > 0
        assert stats.compress_throughput_mbps > 0
        assert stats.max_abs_error >= 0
        assert recon.shape == weight_like.shape

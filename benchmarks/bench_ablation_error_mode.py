"""Ablation: relative vs absolute error bounds (Section V-D1).

The paper argues for relative bounds because different layers/models have very
different dynamic ranges (Figure 3): one absolute bound is either too loose for
small-range tensors or too tight for large-range ones.  This ablation
compresses every large weight tensor of each model per-tensor with (a) a
relative bound of 1e-2 and (b) the single absolute bound that equals 1e-2 of
the *global* range, and compares ratio and worst-case relative error.
"""

from __future__ import annotations

import numpy as np

from bench_utils import PAPER_MODELS, save_results, trained_like_state
from repro.compressors import ErrorBoundMode, SZ2Compressor
from repro.metrics import ExperimentRecord, Table

REL_BOUND = 1e-2


def bench_ablation_error_mode(benchmark):
    def run():
        rows = []
        for model_name in PAPER_MODELS:
            state = trained_like_state(model_name, seed=6)
            tensors = {k: v for k, v in state.items() if "weight" in k and v.size > 1024}
            global_range = max(float(v.max() - v.min()) for v in tensors.values())
            abs_bound = REL_BOUND * global_range

            for mode_name, compressor in (
                ("relative", SZ2Compressor(error_bound=REL_BOUND, mode=ErrorBoundMode.REL)),
                ("absolute", SZ2Compressor(error_bound=abs_bound, mode=ErrorBoundMode.ABS)),
            ):
                total_bytes = 0
                total_payload = 0
                worst_relative_error = 0.0
                for value in tensors.values():
                    payload = compressor.compress(value)
                    recon = compressor.decompress(payload)
                    total_bytes += value.nbytes
                    total_payload += len(payload)
                    tensor_range = float(value.max() - value.min()) or 1.0
                    err = float(np.max(np.abs(recon.astype(np.float64) - value.astype(np.float64))))
                    worst_relative_error = max(worst_relative_error, err / tensor_range)
                rows.append({
                    "model": model_name,
                    "mode": mode_name,
                    "ratio": total_bytes / total_payload,
                    "worst_relative_error": worst_relative_error,
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table("Ablation - relative vs absolute error bounds (per-tensor SZ2, bound 1e-2)",
                  ["model", "bound mode", "ratio", "worst per-tensor relative error"])
    record = ExperimentRecord("ablation_error_mode", "REL vs ABS bound behaviour across tensors")
    for row in rows:
        table.add_row(row["model"], row["mode"], f"{row['ratio']:.2f}x",
                      f"{row['worst_relative_error']:.4f}")
        record.add(**row)
    save_results("ablation_error_mode", table, record)

    for model_name in PAPER_MODELS:
        rel = next(r for r in rows if r["model"] == model_name and r["mode"] == "relative")
        abs_ = next(r for r in rows if r["model"] == model_name and r["mode"] == "absolute")
        # relative bounds keep every tensor's error at (or below) the requested
        # 1e-2 of its own range; the single absolute bound lets small-range
        # tensors take proportionally larger damage
        assert rel["worst_relative_error"] <= REL_BOUND * 1.01
        assert abs_["worst_relative_error"] >= rel["worst_relative_error"]

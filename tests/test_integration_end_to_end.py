"""End-to-end integration tests crossing multiple subsystems."""

import numpy as np
import pytest

from repro.core import AdaptiveFedSZCompressor, FedSZConfig, NetworkModel
from repro.core.selection import select_error_bound
from repro.data import make_dataset, train_test_split
from repro.fl import FederatedSimulation, FedSZUpdateCodec, RawUpdateCodec, UpdateCodec
from repro.nn import build_model
from repro.privacy import DPFedSZConfig, DPFedSZUpdateCodec


def _factory(image_size=16, num_classes=10):
    return build_model("simplecnn", num_classes=num_classes, in_channels=3,
                       image_size=image_size, seed=0)


class _AdaptiveCodec(UpdateCodec):
    """FedSZ codec variant backed by the adaptive per-tensor bound compressor."""

    name = "fedsz-adaptive"

    def __init__(self, config: FedSZConfig) -> None:
        self.compressor = AdaptiveFedSZCompressor(config)

    def encode(self, state):
        return self.compressor.compress_state_dict(state)

    def decode(self, payload):
        return self.compressor.decompress_state_dict(payload)


class TestFederatedWithExtensions:
    def test_dp_fedsz_codec_in_simulation(self, tiny_split):
        train, test = tiny_split
        codec = DPFedSZUpdateCodec(FedSZConfig(error_bound=1e-2),
                                   DPFedSZConfig(epsilon=5.0, clip_norm=5.0, seed=0))
        sim = FederatedSimulation(_factory, train, test, n_clients=2, codec=codec, lr=0.15, seed=2)
        result = sim.run(3)
        assert len(result.rounds) == 3
        assert result.mean_compression_ratio > 1.0
        # with a generous epsilon the model still learns something
        assert result.final_accuracy >= result.accuracies[0] - 0.05

    def test_adaptive_codec_in_simulation_matches_uniform(self, tiny_split):
        train, test = tiny_split
        uniform = FederatedSimulation(_factory, train, test, n_clients=2,
                                      codec=FedSZUpdateCodec(FedSZConfig(error_bound=1e-2)),
                                      lr=0.15, seed=2).run(3)
        adaptive = FederatedSimulation(_factory, train, test, n_clients=2,
                                       codec=_AdaptiveCodec(FedSZConfig(error_bound=1e-2)),
                                       lr=0.15, seed=2).run(3)
        assert abs(adaptive.final_accuracy - uniform.final_accuracy) < 0.15
        assert adaptive.total_transmitted_bytes > 0

    def test_problem2_bound_selection_on_real_runs(self):
        # a miniature version of the paper's operating-point selection: run the
        # simulation at several bounds and let select_error_bound pick one that
        # keeps accuracy while minimizing bytes
        dataset = make_dataset("cifar10", n_samples=200, image_size=16, seed=9)
        train, test = train_test_split(dataset, test_fraction=0.25, seed=9)
        cache = {}

        def run_at(bound: float):
            if bound not in cache:
                codec = FedSZUpdateCodec(FedSZConfig(error_bound=bound))
                result = FederatedSimulation(_factory, train, test, n_clients=2, codec=codec,
                                             lr=0.15, seed=3).run(2)
                cache[bound] = result
            return cache[bound]

        bounds = (1e-3, 1e-2, 5e-1)
        chosen = select_error_bound(lambda b: run_at(b).final_accuracy,
                                    lambda b: run_at(b).total_transmitted_bytes,
                                    error_bounds=bounds, tolerance=0.1)
        assert chosen in bounds
        assert chosen != 5e-1 or run_at(5e-1).final_accuracy >= run_at(1e-2).final_accuracy - 0.1

    def test_network_delay_injection_matches_model(self, tiny_split):
        # with simulate_delay the round really sleeps for the modeled time,
        # mirroring the paper's MPI sleep-injection methodology
        train, test = tiny_split
        network = NetworkModel(bandwidth_mbps=2000.0, simulate_delay=True)
        sim = FederatedSimulation(_factory, train, test, n_clients=2, codec=RawUpdateCodec(),
                                  network=network, lr=0.1, seed=4)
        import time
        start = time.perf_counter()
        record = sim.run_round(0)
        elapsed = time.perf_counter() - start
        assert elapsed >= record.communication_seconds * 0.9

    def test_full_pipeline_cross_model_cross_dataset(self):
        # FedSZ round trip for every paper model on every dataset input shape
        from repro.core import FedSZCompressor
        for dataset, channels, classes in (("cifar10", 3, 10), ("fmnist", 1, 10),
                                           ("caltech101", 3, 101)):
            for model_name in ("alexnet", "mobilenetv2", "resnet50"):
                model = build_model(model_name, num_classes=classes, in_channels=channels,
                                    image_size=16, seed=0)
                fedsz = FedSZCompressor(FedSZConfig(error_bound=1e-2))
                recon, report = fedsz.roundtrip(model.state_dict())
                assert report.ratio > 1.5, (dataset, model_name)
                model.load_state_dict(recon)

"""Aggregation services: flat FedAvg and hierarchical (tree) partial-sum merge.

FedAvg is a weighted mean, and a weighted mean is associative once it is
carried as a *weight-carrying partial sum* ``(Σ w_i·x_i, Σ w_i)``: any grouping
of clients into edge aggregators whose partials merge at a root computes the
same mean.  That associativity is what lets millions of clients fan into edge
aggregators instead of one flat server pass (ROADMAP open item 1).

Floating-point addition, however, is *not* associative — a naive float64
partial sum would drift by a few ulps depending on the tree shape, and the
test suite pins tree-vs-flat aggregation **bit-for-bit** at every fan-in.  So
partial sums here carry each element as an unevaluated double-double
``(hi, lo)`` pair (Knuth's TwoSum): merging two partials loses only bits below
``2^-106`` relative, about ``10^16`` times finer than the float64 collapse at
the root and far below anything a float32 (or float64) state-dict cast can
observe.  Every grouping therefore rounds to identical output arrays, and
:func:`repro.fl.server.fedavg_aggregate` routes through the same kernel
(:class:`FlatAggregator` is the single-group special case), so the flat
reference and any :class:`TreeAggregator` fan-in agree exactly.

Integer-dtype state entries are rounded to the nearest integer before the
cast back (``np.rint``); the historic ``astype`` truncation biased counters
toward zero.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Sequence

import numpy as np

__all__ = [
    "Aggregator",
    "ArrivalAggregator",
    "FlatAggregator",
    "TreeAggregator",
    "PartialAggregate",
    "weighted_mean_states",
]


def _two_sum(a, b):
    """Knuth's TwoSum: ``a + b = s + e`` exactly (elementwise on arrays)."""
    s = a + b
    v = s - a
    e = (a - (s - v)) + (b - v)
    return s, e


def _validate_states(states: Sequence[dict[str, np.ndarray]],
                     weights: "Sequence[float] | None") -> np.ndarray:
    """Shared FedAvg input validation; returns the raw weight vector."""
    if not states:
        raise ValueError("need at least one client state to aggregate")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("weights and states must have the same length")
    weight_array = np.asarray(weights, dtype=np.float64)
    if np.any(weight_array < 0) or weight_array.sum() <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    reference = states[0]
    reference_keys = list(reference.keys())
    for state in states[1:]:
        if list(state.keys()) != reference_keys:
            raise ValueError("client state dicts have mismatched keys")
        for key in reference_keys:
            if np.shape(state[key]) != np.shape(reference[key]):
                raise ValueError(f"client state dicts have mismatched shapes "
                                 f"for {key!r}")
    return weight_array


class PartialAggregate:
    """A weight-carrying partial FedAvg sum, mergeable at any fan-in.

    Carries ``Σ w_i·x_i`` per tensor and ``Σ w_i``, each as a compensated
    double-double ``(hi, lo)`` pair so that :meth:`merge` is
    grouping-insensitive to far below output precision (see module docstring).
    ``finalize`` divides and casts back to the reference dtypes.
    """

    __slots__ = ("sums", "weight", "count", "_dtypes")

    def __init__(self, sums: "OrderedDict[str, tuple[np.ndarray, np.ndarray]]",
                 weight: tuple[float, float], count: int,
                 dtypes: "OrderedDict[str, np.dtype]") -> None:
        self.sums = sums
        self.weight = weight
        self.count = count
        self._dtypes = dtypes

    @classmethod
    def of(cls, state: dict[str, np.ndarray], weight: float) -> "PartialAggregate":
        """Leaf partial for one client: ``(w·x, w)`` with zero compensation."""
        weight = float(weight)
        sums: "OrderedDict[str, tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        dtypes: "OrderedDict[str, np.dtype]" = OrderedDict()
        for key, value in state.items():
            array = np.asarray(value)
            hi = array.astype(np.float64, copy=True) * weight
            sums[key] = (hi, np.zeros_like(hi))
            dtypes[key] = array.dtype
        return cls(sums, (weight, 0.0), 1, dtypes)

    def merge(self, other: "PartialAggregate") -> "PartialAggregate":
        """Combine two partials (double-double addition per element)."""
        if list(self.sums) != list(other.sums):
            raise ValueError("client state dicts have mismatched keys")
        sums: "OrderedDict[str, tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        for key, (a_hi, a_lo) in self.sums.items():
            b_hi, b_lo = other.sums[key]
            if a_hi.shape != b_hi.shape:
                raise ValueError(f"client state dicts have mismatched shapes "
                                 f"for {key!r}")
            hi, err = _two_sum(a_hi, b_hi)
            hi, lo = _two_sum(hi, a_lo + b_lo + err)
            sums[key] = (hi, lo)
        w_hi, w_err = _two_sum(self.weight[0], other.weight[0])
        w_hi, w_lo = _two_sum(w_hi, self.weight[1] + other.weight[1] + w_err)
        return PartialAggregate(sums, (float(w_hi), float(w_lo)),
                                self.count + other.count, self._dtypes)

    def finalize(self) -> "OrderedDict[str, np.ndarray]":
        """Collapse to the aggregated state dict in the reference dtypes."""
        total_weight = self.weight[0] + self.weight[1]
        if total_weight <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        result: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for key, (hi, lo) in self.sums.items():
            value = (hi + lo) / total_weight
            dtype = self._dtypes[key]
            if dtype.kind in "iub":
                # round to nearest instead of the historic truncation toward
                # zero, which biased integer entries (step counters, class
                # counts) low on every round
                value = np.rint(value)
            result[key] = value.astype(dtype)
        return result


def _fold(partials: Sequence[PartialAggregate]) -> PartialAggregate:
    """Left fold of partials — the canonical merge order within one group."""
    merged = partials[0]
    for partial in partials[1:]:
        merged = merged.merge(partial)
    return merged


def weighted_mean_states(states: Sequence[dict[str, np.ndarray]],
                         weights: "Sequence[float] | None" = None) \
        -> "OrderedDict[str, np.ndarray]":
    """Weighted mean of state dicts through the compensated flat kernel.

    The implementation behind :func:`repro.fl.server.fedavg_aggregate`; kept
    here so flat and tree aggregation share one arithmetic path.
    """
    return FlatAggregator().aggregate(states, weights)


class Aggregator(abc.ABC):
    """How a round's decoded client states become the next global state."""

    #: registry-ish label shown by ``repr`` and recorded by benchmarks
    name: str = "base"

    @abc.abstractmethod
    def aggregate(self, states: Sequence[dict[str, np.ndarray]],
                  weights: "Sequence[float] | None" = None) \
            -> "OrderedDict[str, np.ndarray]":
        """Weighted FedAvg of ``states`` (weights default to uniform)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(name={self.name!r})"


class FlatAggregator(Aggregator):
    """Single-pass FedAvg: every client folds into one partial sum."""

    name = "flat"

    def aggregate(self, states: Sequence[dict[str, np.ndarray]],
                  weights: "Sequence[float] | None" = None) \
            -> "OrderedDict[str, np.ndarray]":
        weight_array = _validate_states(states, weights)
        # normalizing before the leaves keeps the carried totals O(1) and
        # makes the single-client round the exact identity (w/w = 1.0)
        normalized = weight_array / weight_array.sum()
        leaves = [PartialAggregate.of(state, w)
                  for state, w in zip(states, normalized)]
        return _fold(leaves).finalize()


class ArrivalAggregator:
    """Order-preserving streaming FedAvg: states fold in as they arrive.

    The coordinator's aggregate-on-arrival path: a round's membership (and so
    its weight vector) is known before any update finishes shipping, so the
    server does not need to hold every decoded state until the last one lands.
    Construct with the full weight vector, then :meth:`add` each client's
    state at its *position* in that vector as its ship completes — in any
    arrival order.  A state folds into the single running compensated partial
    the moment every earlier position has folded, and its buffers are released
    right away, so peak resident decoded updates is the out-of-order window
    (bounded by the transport's worker count), not the fleet size.

    Bit-identical to :meth:`FlatAggregator.aggregate` of the same states in
    position order, by construction: the weight vector is validated and
    normalized upfront exactly as the batch kernel does, the leaves are the
    same ``PartialAggregate.of(state, normalized[i])``, and merges happen in
    the same left-fold position order — arrival order moves only the
    *wall-clock moment* of each merge, never its operands or their order.
    (Key/shape mismatches still raise, from :meth:`PartialAggregate.merge`
    at fold time rather than upfront.)
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if len(weights) == 0:
            raise ValueError("need at least one client state to aggregate")
        weight_array = np.asarray(weights, dtype=np.float64)
        if np.any(weight_array < 0) or weight_array.sum() <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        self._normalized = weight_array / weight_array.sum()
        self._pending: "dict[int, dict[str, np.ndarray]]" = {}
        self._next = 0
        self._running: "PartialAggregate | None" = None
        #: high-water mark of decoded states held waiting for their turn (the
        #: state being folded counts while it sits in the reorder window)
        self.peak_resident = 0

    def __len__(self) -> int:
        return int(self._normalized.size)

    @property
    def arrived(self) -> int:
        """How many states have folded into the running partial so far."""
        return self._next

    def add(self, index: int, state: dict[str, np.ndarray]) -> None:
        """Fold in ``state`` at ``index``, its position in the weight vector."""
        if not 0 <= index < len(self):
            raise IndexError(f"state index {index} out of range for "
                             f"{len(self)} expected states")
        if index < self._next or index in self._pending:
            raise ValueError(f"state {index} was already added")
        self._pending[index] = state
        self.peak_resident = max(self.peak_resident, len(self._pending))
        while self._next in self._pending:
            ready = self._pending.pop(self._next)
            leaf = PartialAggregate.of(ready, self._normalized[self._next])
            self._running = leaf if self._running is None \
                else self._running.merge(leaf)
            self._next += 1

    def finalize(self) -> "OrderedDict[str, np.ndarray]":
        """Collapse to the aggregated state once every position has folded."""
        if self._next != len(self):
            raise ValueError(f"only {self._next} of {len(self)} expected "
                             f"states have arrived")
        return self._running.finalize()


class TreeAggregator(Aggregator):
    """Hierarchical FedAvg: clients fan into edge aggregators, edges into a root.

    ``fan_in`` children merge per node; with ``n`` clients the tree is
    ``ceil(log_fan_in(n))`` levels deep, which is the shape a planet-scale
    deployment uses to keep any single aggregator's inbound load bounded.
    Bit-identical to :class:`FlatAggregator` at every fan-in (see module
    docstring for why), which the test suite and
    ``benchmarks/bench_coordinator.py`` both enforce.
    """

    name = "tree"

    def __init__(self, fan_in: int = 8) -> None:
        if fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {fan_in}")
        self.fan_in = int(fan_in)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"TreeAggregator(fan_in={self.fan_in})"

    def aggregate(self, states: Sequence[dict[str, np.ndarray]],
                  weights: "Sequence[float] | None" = None) \
            -> "OrderedDict[str, np.ndarray]":
        weight_array = _validate_states(states, weights)
        normalized = weight_array / weight_array.sum()
        level: "list[PartialAggregate]" = [
            PartialAggregate.of(state, w)
            for state, w in zip(states, normalized)
        ]
        while len(level) > 1:
            level = [_fold(level[start:start + self.fan_in])
                     for start in range(0, len(level), self.fan_in)]
        return level[0].finalize()

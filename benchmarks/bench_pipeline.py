"""Plan-driven state-dict pipeline: parallel fan-out and the mixed-codec frontier.

Two experiments on a paper-scale state dict (the repo's CPU-scaled ``resnet50``
rebuilt at the paper's size — ``width=64``, blocks ``(3, 4, 6, 3)``, ~23.5M
parameters — matching ``bench_entropy``):

1. **Parallel pipeline** — the same state dict compressed and decompressed at
   ``pipeline_workers=1`` (the strictly sequential reference, ``serial``
   backend) and ``pipeline_workers=N`` on the ``--backend`` execution backend
   (thread or process).  The bitstreams must be byte-identical and the
   reconstructions bit-equal; the parallel path must be at least
   ``--min-speedup`` faster in aggregate.  On the GIL-bound thread backend
   the pipeline clamps its fan-out to the cores actually available (tensor
   compression is pure CPU work), so on a single-core host the speedup
   assertion is skipped — the run still verifies bit-identity and records the
   hardware context (and backend) in the JSON.

2. **Mixed-codec frontier** — the ratio/throughput tradeoff FedSZ's Table I
   implies: uniform SZx (fastest), uniform SZ2/SZ3 (best ratio), and
   ``mixed-codec`` plans routing small tensors to SZx at several size cutoffs.
   Every variant's reconstruction is checked against its plan's per-tensor
   error bounds.

``--smoke`` runs a small model with one repetition and no timing assertion so
CI can exercise the parallel path and every frontier variant on each Python
version.

Run with ``PYTHONPATH=src python benchmarks/bench_pipeline.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import save_results, trained_like_state
from repro.compressors.base import ErrorBoundMode
from repro.core import FedSZCompressor, FedSZConfig
from repro.metrics import ExperimentRecord, Table

#: Architecture overrides that restore a model to the size the paper profiles.
PAPER_SCALE = {"resnet50": {"width": 64, "blocks_per_stage": (3, 4, 6, 3)}}


def _verify_bounds(fedsz: FedSZCompressor, state: dict, recon: dict) -> None:
    """Assert the per-tensor error bounds of the last plan hold on ``recon``."""
    plan = fedsz.last_plan
    assert plan is not None
    for entry in plan:
        original = state[entry.name].astype(np.float64)
        tol = entry.error_bound if entry.mode is ErrorBoundMode.ABS \
            else entry.error_bound * float(original.max() - original.min())
        err = float(np.max(np.abs(recon[entry.name].astype(np.float64) - original)))
        assert err <= tol * (1 + 1e-6) + 1e-9, \
            f"{entry.name} ({entry.codec}): error {err} above bound {tol}"


def bench_parallel(state: dict, workers: int, repeats: int,
                   min_speedup: float | None, backend: str = "thread") -> tuple[Table, dict]:
    """Sequential vs parallel pipeline on the same state dict (bit-identical).

    The sequential reference always runs on the ``serial`` backend; the
    parallel side fans out on ``backend`` (thread or process).
    """
    sequential = FedSZCompressor(FedSZConfig(pipeline_workers=1, backend="serial"))
    parallel = FedSZCompressor(FedSZConfig(pipeline_workers=workers, backend=backend))
    effective = parallel._pipeline_workers()
    cores = os.cpu_count() or 1

    best = {"seq_c": float("inf"), "par_c": float("inf"),
            "seq_d": float("inf"), "par_d": float("inf")}
    payload = None
    for _ in range(repeats):
        start = time.perf_counter()
        seq_payload = sequential.compress_state_dict(state)
        best["seq_c"] = min(best["seq_c"], time.perf_counter() - start)
        start = time.perf_counter()
        par_payload = parallel.compress_state_dict(state)
        best["par_c"] = min(best["par_c"], time.perf_counter() - start)
        assert seq_payload == par_payload, "parallel pipeline changed the bitstream"
        payload = seq_payload

        start = time.perf_counter()
        recon_seq = sequential.decompress_state_dict(payload)
        best["seq_d"] = min(best["seq_d"], time.perf_counter() - start)
        start = time.perf_counter()
        recon_par = parallel.decompress_state_dict(payload)
        best["par_d"] = min(best["par_d"], time.perf_counter() - start)
        for key in recon_seq:
            np.testing.assert_array_equal(recon_seq[key], recon_par[key])

    original_mb = sum(v.nbytes for v in state.values()) / 1e6
    table = Table(f"Parallel state-dict pipeline - {effective} effective {backend} "
                  f"workers (requested {workers}, {cores} cores)",
                  ["stage", "sequential (s)", f"{effective} workers (s)", "speedup",
                   "MB/s parallel"])
    stages = [("compress", "seq_c", "par_c"), ("decompress", "seq_d", "par_d")]
    for label, seq_key, par_key in stages:
        table.add_row(label, f"{best[seq_key]:.2f}", f"{best[par_key]:.2f}",
                      f"{best[seq_key] / best[par_key]:.2f}x",
                      f"{original_mb / best[par_key]:.1f}")
    total_seq = best["seq_c"] + best["seq_d"]
    total_par = best["par_c"] + best["par_d"]
    speedup = total_seq / total_par
    table.add_row("TOTAL", f"{total_seq:.2f}", f"{total_par:.2f}",
                  f"{speedup:.2f}x", f"{original_mb / total_par:.1f}")

    stats = {"backend": backend, "requested_workers": workers,
             "effective_workers": effective,
             "host_cores": cores, "payload_bytes": len(payload),
             "sequential_seconds": total_seq, "parallel_seconds": total_par,
             "speedup": speedup, "bit_identical": True}
    if min_speedup is not None and effective > 1 and cores > 1 and speedup < min_speedup:
        print(f"FAIL: pipeline speedup {speedup:.2f}x is below the "
              f"{min_speedup:.1f}x target at {effective} {backend} workers",
              file=sys.stderr)
        stats["failed"] = True
    elif workers > 1 and (effective == 1 or cores == 1):
        print(f"note: host has {cores} core(s); parallel speedup not expected "
              f"on the {backend} backend (bit-identity still verified)")
    return table, stats


def bench_frontier(state: dict, cutoffs: list[int], repeats: int) -> tuple[Table, list[dict]]:
    """Ratio/throughput frontier: uniform codecs vs mixed-codec plans."""
    variants: list[tuple[str, FedSZConfig]] = [
        ("uniform szx", FedSZConfig(lossy_compressor="szx")),
        ("uniform sz2", FedSZConfig(lossy_compressor="sz2")),
        ("uniform sz3", FedSZConfig(lossy_compressor="sz3")),
    ]
    for cutoff in cutoffs:
        variants.append((
            f"mixed szx<{cutoff // 1024}Ki + sz2",
            FedSZConfig(lossy_compressor="sz2", policy="mixed-codec",
                        policy_options={"small_codec": "szx", "size_cutoff": cutoff}),
        ))

    original_mb = sum(v.nbytes for v in state.values()) / 1e6
    table = Table("Mixed-codec ratio/throughput frontier (paper-scale state dict)",
                  ["plan", "ratio", "compress (s)", "MB/s", "decompress (s)",
                   "MB/s ", "szx tensors"])
    rows: list[dict] = []
    for label, config in variants:
        fedsz = FedSZCompressor(config)
        best_c = best_d = float("inf")
        payload = recon = report = None
        for _ in range(repeats):
            start = time.perf_counter()
            payload, report = fedsz.compress_with_report(state)
            best_c = min(best_c, time.perf_counter() - start)
            start = time.perf_counter()
            recon, _ = fedsz.decompress_with_report(payload)
            best_d = min(best_d, time.perf_counter() - start)
        _verify_bounds(fedsz, state, recon)
        szx_tensors = sum(1 for entry in fedsz.last_plan if entry.codec == "szx")
        table.add_row(label, f"{report.ratio:.2f}x", f"{best_c:.2f}",
                      f"{original_mb / best_c:.1f}", f"{best_d:.2f}",
                      f"{original_mb / best_d:.1f}", szx_tensors)
        rows.append({"plan": label, "ratio": report.ratio,
                     "compress_seconds": best_c, "decompress_seconds": best_d,
                     "compressed_bytes": report.compressed_bytes,
                     "szx_tensors": szx_tensors,
                     "codecs": fedsz.last_plan.codecs})
    return table, rows


def bench_pipeline(model: str, workers: int, cutoffs: list[int], repeats: int,
                   min_speedup: float | None, model_kwargs: dict | None = None,
                   persist: bool = True, backend: str = "thread") -> int:
    state = trained_like_state(model, **(model_kwargs or {}))
    n_params = sum(v.size for v in state.values())
    print(f"{model}: {len(state)} tensors, {n_params / 1e6:.1f}M parameters, "
          f"{sum(v.nbytes for v in state.values()) / 1e6:.1f} MB")

    par_table, par_stats = bench_parallel(state, workers, repeats, min_speedup,
                                          backend=backend)
    frontier_table, frontier_rows = bench_frontier(state, cutoffs, repeats)

    record = ExperimentRecord("pipeline",
                              "plan-driven pipeline: parallel per-tensor fan-out "
                              "(bit-identical) and the mixed-codec frontier")
    record.add(model=model, parameters=int(n_params), **par_stats)
    for row in frontier_rows:
        record.add(**row)
    if persist:
        save_results("pipeline", [par_table, frontier_table], record)
    else:
        # smoke mode is a correctness drill on a toy model; don't clobber the
        # committed paper-scale numbers under benchmarks/results/
        print()
        print(par_table.render())
        print()
        print(frontier_table.render())

    best = max(frontier_rows, key=lambda r: r["ratio"])
    fastest = min(frontier_rows, key=lambda r: r["compress_seconds"])
    print(f"best ratio:   {best['plan']} at {best['ratio']:.2f}x")
    print(f"fastest:      {fastest['plan']} at "
          f"{fastest['compress_seconds']:.2f}s compress")
    return 1 if par_stats.get("failed") else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--model", default="resnet50",
                        help="model whose state dict supplies the tensors")
    parser.add_argument("--workers", type=int, default=4,
                        help="pipeline_workers for the parallel path")
    parser.add_argument("--cutoffs", type=int, nargs="+",
                        default=[16 * 1024, 64 * 1024, 256 * 1024],
                        help="mixed-codec size cutoffs (elements) to sweep")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repetitions (best-of)")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="fail unless the parallel pipeline is this much "
                             "faster (skipped on single-core hosts)")
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"),
                        help="execution backend for the parallel pipeline side "
                             "(the sequential reference always runs serial)")
    parser.add_argument("--repro-scale", action="store_true",
                        help="use the repo's CPU-scaled architecture instead of "
                             "the paper-size rebuild")
    parser.add_argument("--smoke", action="store_true",
                        help="small model, single repetition, no timing assertion "
                             "(correctness-only CI mode)")
    args = parser.parse_args(argv)

    if args.smoke:
        return bench_pipeline("simplecnn", args.workers, cutoffs=[2048],
                              repeats=1, min_speedup=None, persist=False,
                              backend=args.backend)
    model_kwargs = None if args.repro_scale else PAPER_SCALE.get(args.model)
    return bench_pipeline(args.model, args.workers, cutoffs=args.cutoffs,
                          repeats=args.repeats, min_speedup=args.min_speedup,
                          model_kwargs=model_kwargs, backend=args.backend)


if __name__ == "__main__":
    sys.exit(main())

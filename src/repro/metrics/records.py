"""Generic experiment-result records shared by the benchmark harness."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = ["CompressionRecord", "ExperimentRecord"]


@dataclass
class CompressionRecord:
    """One measurement of one compressor on one workload."""

    compressor: str
    workload: str
    error_bound: float
    ratio: float
    compress_seconds: float
    decompress_seconds: float
    throughput_mbps: float
    max_abs_error: float
    extra: dict = field(default_factory=dict)


@dataclass
class ExperimentRecord:
    """Container tying an experiment id to its measured rows.

    ``experiment`` matches the ids used in DESIGN.md / EXPERIMENTS.md (e.g.
    ``"table1"``, ``"fig8"``).  ``to_json`` gives benchmarks an easy way to dump
    machine-readable results next to the human-readable tables.
    """

    experiment: str
    description: str
    rows: list[dict] = field(default_factory=list)

    def add(self, **row: object) -> None:
        """Append one result row."""
        self.rows.append(dict(row))

    def to_json(self, indent: int = 2) -> str:
        """Serialize the record (dataclass rows are converted to dicts)."""
        def _convert(value: object) -> object:
            if hasattr(value, "__dataclass_fields__"):
                return asdict(value)  # type: ignore[arg-type]
            return value

        payload = {
            "experiment": self.experiment,
            "description": self.description,
            "rows": [{k: _convert(v) for k, v in row.items()} for row in self.rows],
        }
        return json.dumps(payload, indent=indent, default=str)

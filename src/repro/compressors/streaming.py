"""Streaming encode/decode paths for the SZ-family lossy compressors.

The SZ2/SZ3 payload is a shared lossy container header followed by a
lossless-wrapped body whose dominant cost is the chunked ``HUF3`` Huffman
stream.  :class:`SZStreamDecoder` overlaps that cost with byte arrival, and
:class:`SZStreamEncoder` is its encode-side mirror: it emits payload bytes as
the body is coded, so a simulated transfer can start before the encode
completes.  :class:`SZStreamDecoder` overlaps decode with arrival:

1. the container header (dtype, shape, bound) is assembled and validated as
   its first bytes land,
2. the body bytes flow through the codec's incremental
   :meth:`~repro.compressors.lossless.LosslessCodec.decompressor`,
3. the plaintext prefix is walked just far enough to locate the embedded
   Huffman stream (each codec contributes a tiny ``_huffman_span`` parser),
4. Huffman bytes are forwarded to a
   :class:`~repro.compressors.huffman.ChunkBandConsumer`, which decodes every
   chunk whose bytes have arrived,
5. :meth:`SZStreamDecoder.finish` verifies completeness (including the HUF3
   CRC) and runs the codec's normal reconstruction with the pre-decoded
   symbol array.

The reconstruction call is the *same* method the batch path uses — only the
source of the Huffman symbols differs — so streaming output is bit-identical
to :meth:`~repro.compressors.base.LossyCompressor.decompress` by
construction.  Corrupt or truncated streams raise :class:`ValueError`, at the
earliest byte that structurally proves the damage where possible, otherwise
at :meth:`~SZStreamDecoder.finish`.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.codebook import armed_producer
from repro.compressors.base import (LossyCompressor, TensorStreamDecoder,
                                    TensorStreamEncoder)
from repro.utils.bitstream import StreamBuffer
from repro.utils.serialization import MAX_NDIM

__all__ = ["SZStreamDecoder", "SZStreamEncoder"]


class SZStreamEncoder(TensorStreamEncoder):
    """Incremental encoder for SZ2/SZ3-style lossy payloads.

    The encode-side mirror of :class:`SZStreamDecoder`:

    1. the shared container header is pinned by the prelude and emitted as
       the first piece,
    2. the pre-Huffman body fields (block geometry, selectors, coefficients
       or anchors) flow through the codec's incremental
       :meth:`~repro.compressors.lossless.LosslessCodec.compressor`,
    3. the embedded ``HUF3`` stream's byte length is emitted *analytically*
       from the :class:`~repro.compressors.huffman.ChunkBandProducer`'s
       pinned index — before a single band has been packed — so the length
       prefix never stalls the stream,
    4. the producer's byte-order chunks then stream through the lossless
       compressor as each Huffman chunk is coded,
    5. the outlier tail follows and the compressor is flushed.

    Every piece the lossless compressor releases is yielded immediately, so
    downstream consumers (the simulated wire) see bytes while later chunks
    are still being coded.  The concatenated pieces are byte-identical to
    :meth:`~repro.compressors.base.LossyCompressor.compress` because both
    paths share ``_encode_prelude`` and ``_body_parts`` and the producer's
    stream equals the batch Huffman encoding.  ``scratch_bytes`` reports the
    producer's peak emission scratch after the generator is exhausted.

    Requires the compressor to provide ``lossless``, ``huffman``, and
    ``_body_parts``.
    """

    def chunks(self, data: np.ndarray):
        comp = self._compressor
        header, flat, abs_bound = comp._encode_prelude(data)
        yield header
        prefix, codes, suffix = comp._body_parts(flat, abs_bound)
        lc = comp.lossless.compressor()
        for piece in prefix:
            out = lc.feed(piece)
            if out:
                yield out
        if codes is not None:
            # same codebook consultation as the batch path (codebook.py's
            # entropy_encode), so warm-table streams stay byte-identical
            channel = comp._codebook
            if channel is None:
                producer = comp.huffman.stream_producer(codes)
            else:
                producer = armed_producer(comp.huffman, codes, channel)
            out = lc.feed(struct.pack("<Q", producer.stream_length))
            if out:
                yield out
            for chunk in producer.chunks():
                out = lc.feed(chunk)
                if out:
                    yield out
            self.scratch_bytes = max(self.scratch_bytes,
                                     producer.peak_scratch_bytes)
        for piece in suffix:
            out = lc.feed(piece)
            if out:
                yield out
        tail = lc.finish()
        if tail:
            yield tail


class SZStreamDecoder(TensorStreamDecoder):
    """Incremental decoder for SZ2/SZ3-style lossy payloads.

    Requires the compressor to provide ``lossless`` (a codec with an
    incremental ``decompressor()``), ``huffman`` (a
    :class:`~repro.compressors.huffman.HuffmanCoder`), ``_huffman_span``
    (locate the embedded Huffman stream in a plaintext prefix), and
    ``_decode_plain_body`` (reconstruct from the full plaintext body, with
    optional pre-decoded symbols).
    """

    def __init__(self, compressor: LossyCompressor) -> None:
        self._compressor = compressor
        self._result: "np.ndarray | None" = None
        self._received = 0
        self._head = bytearray()      # container-header assembly
        self._header = None           # (dtype, shape, count, abs_bound, offset)
        self._dec = compressor.lossless.decompressor()
        self._consumer = compressor.huffman.stream_consumer()
        self._plain = StreamBuffer()  # decompressed body plaintext
        self._span: "tuple[int, int] | None" = None  # (huff_start, huff_len)
        self._fed = 0                 # Huffman bytes already forwarded

    # -- observability ---------------------------------------------------
    @property
    def bytes_received(self) -> int:
        """Payload bytes fed so far."""
        return self._received

    @property
    def symbols_decoded(self) -> int:
        """Huffman symbols decoded so far (tentative until :meth:`finish`)."""
        return self._consumer.symbols_decoded

    # -- streaming surface ----------------------------------------------
    def feed(self, data) -> None:
        """Consume arriving payload bytes, decoding eagerly."""
        if self._result is not None:
            raise ValueError("cannot feed a finished tensor stream decoder")
        data = memoryview(data)
        self._received += data.nbytes
        if self._header is None:
            data = self._absorb_header(data)
            if self._header is None:
                return
        if data.nbytes:
            plaintext = self._dec.feed(data)
            if plaintext:
                self._plain.feed(plaintext)
                self._pump()

    def finish(self) -> np.ndarray:
        """Verify the stream completed and return the reconstructed array."""
        if self._result is not None:
            return self._result
        if self._header is None:
            # raises the same truncation error the batch header parse gives
            self._compressor._parse_container_header(bytes(self._head))
            raise ValueError("corrupt lossy payload: header truncated")
        tail = self._dec.finish()
        if tail:
            self._plain.feed(tail)
        self._pump()
        dtype, shape, count, abs_bound, _ = self._header
        codes = None
        if self._span is not None and self._span[1] > 0:
            # verifies total length and the HUF3 CRC-32 over the whole stream
            codes = self._consumer.finish()
        body = bytes(self._plain.view())
        flat = self._compressor._normalized_body_decode(
            self._compressor._decode_plain_body, body, count, abs_bound,
            dtype, codes)
        self._result = flat.astype(dtype, copy=False).reshape(shape)
        return self._result

    # -- internals -------------------------------------------------------
    def _absorb_header(self, data: memoryview) -> memoryview:
        """Assemble the container header; returns the unconsumed tail."""
        head = self._head
        if len(head) < 2:
            take = min(2 - len(head), data.nbytes)
            head += data[:take]
            data = data[take:]
            if len(head) < 2:
                return data
            # the fixed fields are checkable from byte 2 on — surface
            # corruption mid-stream instead of waiting for a full header
            if head[0] not in self._compressor._CODE_DTYPES:
                raise ValueError(f"corrupt lossy payload: unknown dtype code {head[0]}")
            if head[1] > MAX_NDIM:
                raise ValueError(f"corrupt lossy payload: ndim {head[1]} "
                                 f"exceeds NumPy's limit of {MAX_NDIM}")
        need = 2 + 8 * head[1] + 8
        take = min(need - len(head), data.nbytes)
        head += data[:take]
        data = data[take:]
        if len(head) == need:
            self._header = self._compressor._parse_container_header(bytes(head))
        return data

    def _pump(self) -> None:
        """Forward newly arrived Huffman bytes to the chunk consumer."""
        if self._span is None:
            self._span = self._compressor._huffman_span(self._plain)
            if self._span is None:
                return
        start, length = self._span
        if length == 0:
            return
        hi = min(self._plain.available, start + length)
        lo = start + self._fed
        if hi > lo:
            self._consumer.feed(self._plain.view(lo, hi))
            self._fed = hi - start

"""Profiled plan selection across the bandwidth sweep (Problems 1-2, Figure 8).

Two experiments on a trained-looking state dict:

1. **Plan crossover sweep** — the ``profiled`` plan policy resolves a full
   per-tensor plan at each bandwidth of a log sweep.  On slow links every
   tensor ships through a high-ratio EBLC; as the link speeds up the plan
   first migrates to faster codecs and finally falls back to the lossless
   ``verbatim`` tier (Eqn. (1) no longer pays).  The sweep records, per
   bandwidth, the codec mix, the modeled round time against shipping raw, and
   asserts the modeled time never exceeds the uncompressed baseline — the
   feasibility contract of Problem 1.

2. **Crossover agreement** — the bandwidth where the plan turns
   verbatim-dominant is compared against the analytic
   :func:`~repro.core.network.crossover_bandwidth` of the best measured
   candidate on the concatenated weights (Figure 8's ~crossover).  The two
   must land within an order of magnitude of each other — they answer the
   same question through different machinery.

``--smoke`` runs a small model on the deterministic analytic cost model with
no result persistence, so CI can exercise the profiled policy (and the
picklability of its candidate tasks) on every backend.  ``--profile-cache
PATH`` adds a warm-start drill: the sweep is profiled cold into a durable
cache at PATH, then re-profiled by a fresh profiler loading that cache — the
warm pass must measure nothing (zero misses, zero drifts) and resolve
byte-identical plans.

Run with ``PYTHONPATH=src python benchmarks/bench_selection.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import save_results, trained_like_state
from repro.core import (
    CodecProfiler,
    FedSZConfig,
    ProfiledPolicy,
    crossover_bandwidth,
    select_compressor,
)
from repro.core.partition import partition_state_dict
from repro.core.plan import PLAN_PROVENANCE_KEY
from repro.metrics import ExperimentRecord, Table

DEFAULT_BANDWIDTHS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 20000.0)


def sweep_plans(state: dict, bandwidths: "tuple[float, ...]", cost_model: str,
                backend: str, workers: int, bound: float) -> tuple[Table, list[dict]]:
    """Resolve the profiled plan at every bandwidth; one shared profiler."""
    config = FedSZConfig(error_bound=bound)
    lossy = partition_state_dict(state, config).lossy
    profiler = CodecProfiler(cost_model=cost_model, backend=backend, workers=workers)

    table = Table("Profiled plan selection vs link bandwidth",
                  ["bandwidth (Mbps)", "codec mix", "est ratio",
                   "modeled (s)", "raw (s)", "lossless tensors"])
    rows: list[dict] = []
    for bandwidth in bandwidths:
        policy = ProfiledPolicy(bandwidth_mbps=bandwidth, profiler=profiler,
                                max_bound=bound)
        plan = policy.build_plan(lossy, config)
        modeled = raw = est_compressed = 0.0
        counts: dict[str, int] = {}
        verbatim_bytes = 0
        for entry in plan:
            provenance = entry.options[PLAN_PROVENANCE_KEY]
            modeled += provenance["modeled_seconds"]
            raw += provenance["uncompressed_seconds"]
            est_compressed += lossy[entry.name].nbytes / provenance["estimated_ratio"]
            counts[entry.codec] = counts.get(entry.codec, 0) + 1
            if entry.codec == "verbatim":
                verbatim_bytes += int(lossy[entry.name].nbytes)
        assert modeled <= raw * (1 + 1e-9), \
            f"plan at {bandwidth} Mbps models {modeled:.3f}s against a " \
            f"{raw:.3f}s raw baseline — Eqn. (1) violated"
        mix = " + ".join(f"{n}x{c}" for c, n in sorted(counts.items()))
        lossy_bytes = sum(int(v.nbytes) for v in lossy.values())
        est_ratio = lossy_bytes / est_compressed if est_compressed else 1.0
        verbatim_tensors = counts.get("verbatim", 0)
        table.add_row(f"{bandwidth:,.0f}", mix, f"{est_ratio:.2f}x",
                      f"{modeled:.3f}", f"{raw:.3f}", verbatim_tensors)
        rows.append({"bandwidth_mbps": bandwidth, "codec_counts": counts,
                     "estimated_ratio": est_ratio, "modeled_seconds": modeled,
                     "uncompressed_seconds": raw,
                     "verbatim_tensors": verbatim_tensors,
                     "verbatim_bytes": verbatim_bytes,
                     "lossy_bytes": lossy_bytes,
                     "tensors": len(plan)})
    print(f"profiler cache after sweep: {profiler.cache_info()} "
          f"({len(bandwidths)} bandwidths x {len(lossy)} tensors)")
    return table, rows


def plan_crossover(rows: list[dict]) -> float:
    """First swept bandwidth where most lossy *bytes* ship verbatim (inf if never).

    Byte-weighted on purpose: the analytic crossover is computed on the
    concatenated weights, whose behaviour the few large tensors dominate —
    counting tensors would let the many small ones (which flip much earlier,
    their per-call overhead dwarfs their transfer time) skew the comparison.
    """
    for row in rows:
        if row["verbatim_bytes"] > row["lossy_bytes"] / 2:
            return row["bandwidth_mbps"]
    return float("inf")


def compare_crossover(state: dict, rows: list[dict], cost_model: str,
                      bound: float) -> tuple[Table, dict]:
    """Figure 8's analytic crossover vs where the swept plan flips.

    The plan abandons compression only once the *last* candidate stops paying
    — it migrates to ever-faster codecs as the link speeds up — so the
    analytic reference is the maximum per-candidate crossover over the grid,
    not the crossover of the slow/high-ratio codec that wins on slow links.
    """
    lossy_weights = [v.ravel() for k, v in state.items()
                     if "weight" in k and v.size > 1024]
    planned = plan_crossover(rows)
    if not lossy_weights:
        print("note: no lossy-compressible weight tensors; skipping the "
              "analytic crossover comparison")
        table = Table("Crossover: analytic Eqn. (1) vs the profiled plan sweep",
                      ["source", "crossover (Mbps)", "detail"])
        table.add_row("profiled plan sweep", f"{planned:,.0f}",
                      "first bandwidth where most lossy bytes ship verbatim")
        return table, {"plan_crossover_mbps": planned,
                       "analytic_crossover_mbps": None}
    weights = np.concatenate(lossy_weights)
    best, grid = select_compressor(weights, error_bounds=(bound,),
                                   cost_model=cost_model, sample_limit=65536)
    crossovers = {
        e.compressor: crossover_bandwidth(e.compress_seconds, e.decompress_seconds,
                                          weights.nbytes, weights.nbytes / e.ratio)
        for e in grid if e.ratio > 1.0}
    if not crossovers:
        print("note: no candidate achieved ratio > 1; compression never pays "
              "on this workload")
        crossovers = {"none": 0.0}
    last_codec, analytic = max(crossovers.items(), key=lambda item: item[1])
    table = Table("Crossover: analytic Eqn. (1) vs the profiled plan sweep",
                  ["source", "crossover (Mbps)", "detail"])
    table.add_row("crossover_bandwidth", f"{analytic:,.0f}",
                  f"last paying candidate {last_codec} (slow-link pick: "
                  f"{best.compressor} @ {best.error_bound:g}, "
                  f"ratio {best.ratio:.2f}x, "
                  f"crossover {crossovers.get(best.compressor, 0):,.0f} Mbps)")
    table.add_row("profiled plan sweep", f"{planned:,.0f}",
                  "first bandwidth where most lossy bytes ship verbatim")
    stats = {"analytic_crossover_mbps": analytic, "plan_crossover_mbps": planned,
             "per_candidate_crossovers_mbps": crossovers,
             "last_paying_candidate": last_codec,
             "best_candidate": best.compressor, "best_bound": best.error_bound,
             "best_ratio": best.ratio}
    return table, stats


def bench_selection(model: str, bandwidths: "tuple[float, ...]", cost_model: str,
                    backend: str, workers: int, bound: float,
                    persist: bool = True) -> int:
    state = trained_like_state(model)
    n_params = sum(v.size for v in state.values())
    print(f"{model}: {len(state)} tensors, {n_params / 1e6:.1f}M parameters, "
          f"{sum(v.nbytes for v in state.values()) / 1e6:.1f} MB "
          f"({cost_model} cost model, {backend} backend)")

    sweep_table, rows = sweep_plans(state, bandwidths, cost_model, backend,
                                    workers, bound)
    crossover_table, crossover_stats = compare_crossover(state, rows, cost_model,
                                                         bound)

    analytic = crossover_stats["analytic_crossover_mbps"]
    planned = crossover_stats["plan_crossover_mbps"]
    if np.isfinite(analytic) and np.isfinite(planned) and analytic > 0:
        agreement = max(planned / analytic, analytic / planned)
        crossover_stats["agreement_factor"] = agreement
        if agreement > 10.0:
            print(f"FAIL: plan crossover {planned:,.0f} Mbps disagrees with the "
                  f"analytic {analytic:,.0f} Mbps by {agreement:.1f}x",
                  file=sys.stderr)
            return 1

    record = ExperimentRecord("selection",
                              "profiled plan selection across the bandwidth "
                              "sweep and the Eqn.-1 crossover agreement")
    for row in rows:
        record.add(model=model, cost_model=cost_model, **row)
    record.add(model=model, cost_model=cost_model, **crossover_stats)
    if persist:
        save_results("selection", [sweep_table, crossover_table], record)
    else:
        # smoke mode is a correctness drill on a toy model; don't clobber the
        # committed numbers under benchmarks/results/
        print()
        print(sweep_table.render())
        print()
        print(crossover_table.render())
    return 0


def warm_start_drill(model: str, cost_model: str, backend: str, workers: int,
                     bound: float, cache_path: str) -> int:
    """Durable profile cache: a warm start must plan without measuring.

    Profiles the model's lossy partition cold (writing the cache), then hands
    the same tensors to a *fresh* profiler constructed over the same cache
    file.  The warm profiler must resolve the identical plan from disk alone —
    zero misses, zero drifts — which is what makes round 2+ (and run 2+)
    plan-building measurement-free.
    """
    state = trained_like_state(model)
    config = FedSZConfig(error_bound=bound)
    lossy = partition_state_dict(state, config).lossy
    if os.path.exists(cache_path):
        os.remove(cache_path)

    plans, infos = {}, {}
    for label in ("cold", "warm"):
        profiler = CodecProfiler(cost_model=cost_model, backend=backend,
                                 workers=workers, profile_cache=cache_path)
        policy = ProfiledPolicy(bandwidth_mbps=10.0, profiler=profiler,
                                max_bound=bound)
        plans[label] = policy.build_plan(lossy, config)
        infos[label] = profiler.cache_info()
        print(f"profile cache ({label}): {infos[label]}")

    assert infos["cold"]["misses"] > 0, "cold start should have measured"
    assert infos["warm"]["misses"] == 0 and infos["warm"]["drifts"] == 0, \
        f"warm start re-measured: {infos['warm']}"
    cold = [(e.name, e.codec, e.error_bound, e.mode) for e in plans["cold"]]
    warm = [(e.name, e.codec, e.error_bound, e.mode) for e in plans["warm"]]
    assert warm == cold, "warm-start plan diverged from the cold plan"
    print(f"warm start OK: {len(warm)} tensors planned measurement-free "
          f"from {cache_path}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--model", default="resnet50",
                        help="model whose state dict supplies the tensors")
    parser.add_argument("--bandwidths", type=float, nargs="+",
                        default=list(DEFAULT_BANDWIDTHS),
                        help="bandwidth sweep in Mbps")
    parser.add_argument("--bound", type=float, default=1e-2,
                        help="accuracy-proxy bound cap (Problem 2)")
    parser.add_argument("--cost-model", default="measured",
                        choices=("measured", "analytic"),
                        help="wall-clock measurement or the deterministic "
                             "analytic throughput table")
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process"),
                        help="execution backend for the candidate-grid fan-out")
    parser.add_argument("--workers", type=int, default=4,
                        help="profiler fan-out workers")
    parser.add_argument("--smoke", action="store_true",
                        help="small model, analytic cost model, no persistence "
                             "(correctness-only CI mode)")
    parser.add_argument("--profile-cache", default=None, metavar="PATH",
                        help="also run the durable-cache warm-start drill "
                             "against this path (the file is recreated)")
    args = parser.parse_args(argv)

    model = "simplecnn" if args.smoke else args.model
    cost_model = "analytic" if args.smoke else args.cost_model
    status = bench_selection(model, tuple(args.bandwidths),
                             cost_model=cost_model, backend=args.backend,
                             workers=args.workers, bound=args.bound,
                             persist=not args.smoke)
    if status == 0 and args.profile_cache is not None:
        status = warm_start_drill(model, cost_model, args.backend,
                                  args.workers, args.bound, args.profile_cache)
    return status


if __name__ == "__main__":
    sys.exit(main())
